(* End-to-end integration tests: each complete flow on a small circuit,
   exercising the module seams the unit tests cannot. *)

let build ?(name = "fract") ?(seed = 71) () =
  let prof = Circuitgen.Profiles.find name in
  let circuit, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params prof ~seed)
  in
  (circuit, Circuitgen.Gen.initial_placement circuit pads)

let finalize circuit global =
  let rep = Legalize.Abacus.legalize circuit global () in
  let p = rep.Legalize.Abacus.placement in
  ignore (Legalize.Improve.run circuit p);
  p

let test_kraftwerk_full_flow () =
  let circuit, p0 = build () in
  let state, reports = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
  let final = finalize circuit state.Kraftwerk.Placer.placement in
  Alcotest.(check bool) "iterated" true (List.length reports > 3);
  Alcotest.(check bool) "legal" true (Legalize.Check.is_legal circuit final);
  (* Legal result should beat the trivially striped arrangement the
     annealer starts from. *)
  let striped, _ =
    Baselines.Annealer.place
      ~config:
        { Baselines.Annealer.quick_config with
          Baselines.Annealer.moves_per_cell = 0;
          Baselines.Annealer.t_steps = 1 }
      circuit p0
  in
  Alcotest.(check bool) "beats striped" true
    (Metrics.Wirelength.hpwl circuit final
    < Metrics.Wirelength.hpwl circuit striped)

let test_all_flows_produce_comparable_legal_results () =
  let circuit, p0 = build () in
  let k =
    let s, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
    finalize circuit s.Kraftwerk.Placer.placement
  in
  let g = finalize circuit (fst (Baselines.Gordian.place circuit p0)) in
  let a =
    finalize circuit
      (fst (Baselines.Annealer.place ~config:Baselines.Annealer.quick_config circuit p0))
  in
  List.iter
    (fun (name, p) ->
      Alcotest.(check bool) (name ^ " legal") true (Legalize.Check.is_legal circuit p))
    [ ("kraftwerk", k); ("gordian", g); ("annealer", a) ];
  (* All three should land within a factor 3 of each other. *)
  let wk = Metrics.Wirelength.hpwl circuit k in
  let wg = Metrics.Wirelength.hpwl circuit g in
  let wa = Metrics.Wirelength.hpwl circuit a in
  let lo = Float.min wk (Float.min wg wa) and hi = Float.max wk (Float.max wg wa) in
  Alcotest.(check bool) "same ballpark" true (hi /. lo < 3.)

let test_save_place_load_place_roundtrip () =
  let circuit, p0 = build () in
  let file = Filename.temp_file "integ" ".ckt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Netlist.Io.save_circuit file circuit;
      let circuit' =
        match Netlist.Io.load_circuit file with
        | Ok c -> c
        | Error e -> Alcotest.fail (Netlist.Io.error_message e)
      in
      (* Placing the reloaded circuit from the same initial placement
         gives the identical result (full determinism through IO). *)
      let s1, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
      let s2, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit' p0 in
      Alcotest.check (Alcotest.float 1e-9) "same placement" 0.
        (Netlist.Placement.displacement s1.Kraftwerk.Placer.placement
           s2.Kraftwerk.Placer.placement))

let test_timing_driven_end_to_end () =
  let circuit, p0 = build ~name:"struct" () in
  let tp = Timing.Params.default in
  let lb = Timing.Sta.lower_bound tp circuit in
  let r = Timing.Driven.optimize ~params:tp Kraftwerk.Config.standard circuit p0 in
  Alcotest.(check bool) "final ≥ lower bound" true
    (r.Timing.Driven.final_delay >= lb -. 1e-15);
  (* Compare against the plain area-driven placement (the initial
     placement has every cell at the region centre, so its delay is a
     meaningless near-lower-bound number). *)
  let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
  let plain =
    (Timing.Sta.analyse tp circuit state.Kraftwerk.Placer.placement).Timing.Sta.max_delay
  in
  Alcotest.(check bool) "improved vs area-driven" true
    (r.Timing.Driven.final_delay < plain);
  (* The final placement still legalises. *)
  let final = finalize circuit r.Timing.Driven.placement in
  Alcotest.(check bool) "legal" true (Legalize.Check.is_legal circuit final)

let test_requirement_mode_is_exact () =
  let circuit, p0 = build ~name:"primary1" () in
  let tp = Timing.Params.default in
  let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
  let base =
    (Timing.Sta.analyse tp circuit state.Kraftwerk.Placer.placement).Timing.Sta.max_delay
  in
  let target = base *. 0.9 in
  let r =
    Timing.Driven.meet_requirement ~params:tp ~max_extra_steps:40
      Kraftwerk.Config.standard circuit p0 ~target
  in
  if r.Timing.Driven.met then
    (* "Met" must be literally true of the returned placement. *)
    Alcotest.(check bool) "verified on placement" true
      ((Timing.Sta.analyse tp circuit r.Timing.Driven.placement).Timing.Sta.max_delay
      <= target +. 1e-15)
  else
    Alcotest.(check bool) "not met ⇒ ran out of steps" true
      (r.Timing.Driven.final_delay > target)

let test_congestion_hook_changes_placement () =
  let circuit, p0 = build () in
  let hooks =
    { Kraftwerk.Placer.no_hooks with
      Kraftwerk.Placer.extra_density =
        Some
          (fun c p ~nx ~ny ->
            match
              Route.Congest.extra_density ~strength:2. c p
                (Route.Grid_spec.make ~nx ~ny ())
            with
            | Ok g -> g
            | Error _ -> None) }
  in
  let plain, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
  let driven, _ = Kraftwerk.Placer.run ~hooks Kraftwerk.Config.standard circuit p0 in
  (* The hook feeds back: placements differ (unless there was never any
     overflow, in which case they agree exactly — accept both but check
     the run completed sanely). *)
  let d =
    Netlist.Placement.displacement plain.Kraftwerk.Placer.placement
      driven.Kraftwerk.Placer.placement
  in
  Alcotest.(check bool) "finite" true (Float.is_finite d)

let test_eco_preserves_relative_placement () =
  let circuit, p0 = build ~name:"primary1" () in
  let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
  let placed = state.Kraftwerk.Placer.placement in
  let rng = Numeric.Rng.create 5 in
  let circuit' = Kraftwerk.Eco.rewire circuit rng ~fraction:0.01 in
  let adapted, _ =
    Kraftwerk.Eco.replace Kraftwerk.Config.standard circuit'
      (Netlist.Placement.copy placed) ~max_steps:6
  in
  (* Check rank correlation of x-order survives: neighbours mostly stay
     neighbours. *)
  let ids =
    Array.to_list circuit.Netlist.Circuit.cells
    |> List.filter Netlist.Cell.movable
    |> List.map (fun (cl : Netlist.Cell.t) -> cl.Netlist.Cell.id)
    |> Array.of_list
  in
  let order_of p =
    let a = Array.copy ids in
    Array.sort
      (fun i j ->
        Float.compare p.Netlist.Placement.x.(i) p.Netlist.Placement.x.(j))
      a;
    a
  in
  let before = order_of placed and after = order_of adapted in
  let rank = Hashtbl.create (Array.length ids) in
  Array.iteri (fun r id -> Hashtbl.replace rank id r) before;
  let total_shift = ref 0 in
  Array.iteri
    (fun r id -> total_shift := !total_shift + abs (r - Hashtbl.find rank id))
    after;
  let mean_shift = float_of_int !total_shift /. float_of_int (Array.length ids) in
  (* Mean rank shift well under 15% of the cell count. *)
  Alcotest.(check bool) "relative order preserved" true
    (mean_shift < 0.15 *. float_of_int (Array.length ids))

let suite =
  [
    Alcotest.test_case "kraftwerk full flow" `Quick test_kraftwerk_full_flow;
    Alcotest.test_case "all flows comparable" `Quick test_all_flows_produce_comparable_legal_results;
    Alcotest.test_case "io + place roundtrip" `Quick test_save_place_load_place_roundtrip;
    Alcotest.test_case "timing driven e2e" `Slow test_timing_driven_end_to_end;
    Alcotest.test_case "requirement exact" `Slow test_requirement_mode_is_exact;
    Alcotest.test_case "congestion hook" `Quick test_congestion_hook_changes_placement;
    Alcotest.test_case "eco relative order" `Slow test_eco_preserves_relative_placement;
  ]
