(* Tests for the FFT and convolution kernels. *)

let approx = Alcotest.float 1e-6

let test_pow2_helpers () =
  Alcotest.(check bool) "1" true (Numeric.Fft.is_pow2 1);
  Alcotest.(check bool) "8" true (Numeric.Fft.is_pow2 8);
  Alcotest.(check bool) "12" false (Numeric.Fft.is_pow2 12);
  Alcotest.(check bool) "0" false (Numeric.Fft.is_pow2 0);
  Alcotest.(check int) "next 5" 8 (Numeric.Fft.next_pow2 5);
  Alcotest.(check int) "next 8" 8 (Numeric.Fft.next_pow2 8);
  Alcotest.(check int) "next 0" 1 (Numeric.Fft.next_pow2 0)

let test_impulse_spectrum_flat () =
  let re = [| 1.; 0.; 0.; 0. |] and im = [| 0.; 0.; 0.; 0. |] in
  Numeric.Fft.transform ~inverse:false re im;
  Array.iter (fun v -> Alcotest.check approx "flat re" 1. v) re;
  Array.iter (fun v -> Alcotest.check approx "flat im" 0. v) im

let test_constant_spectrum_impulse () =
  let re = [| 1.; 1.; 1.; 1. |] and im = Array.make 4 0. in
  Numeric.Fft.transform ~inverse:false re im;
  Alcotest.check approx "dc" 4. re.(0);
  for i = 1 to 3 do
    Alcotest.check approx "ac" 0. re.(i)
  done

let test_roundtrip () =
  let n = 16 in
  let rng = Numeric.Rng.create 3 in
  let re = Array.init n (fun _ -> Numeric.Rng.uniform rng (-1.) 1.) in
  let im = Array.init n (fun _ -> Numeric.Rng.uniform rng (-1.) 1.) in
  let re0 = Array.copy re and im0 = Array.copy im in
  Numeric.Fft.transform ~inverse:false re im;
  Numeric.Fft.transform ~inverse:true re im;
  Alcotest.(check bool) "re restored" true (Numeric.Vec.max_abs_diff re0 re < 1e-9);
  Alcotest.(check bool) "im restored" true (Numeric.Vec.max_abs_diff im0 im < 1e-9)

let naive_dft re im =
  let n = Array.length re in
  let out_re = Array.make n 0. and out_im = Array.make n 0. in
  for k = 0 to n - 1 do
    for t = 0 to n - 1 do
      let ang = -2. *. Float.pi *. float_of_int (k * t) /. float_of_int n in
      out_re.(k) <- out_re.(k) +. (re.(t) *. cos ang) -. (im.(t) *. sin ang);
      out_im.(k) <- out_im.(k) +. (re.(t) *. sin ang) +. (im.(t) *. cos ang)
    done
  done;
  (out_re, out_im)

let test_matches_naive_dft () =
  let n = 8 in
  let rng = Numeric.Rng.create 4 in
  let re = Array.init n (fun _ -> Numeric.Rng.uniform rng (-1.) 1.) in
  let im = Array.init n (fun _ -> Numeric.Rng.uniform rng (-1.) 1.) in
  let exp_re, exp_im = naive_dft re im in
  Numeric.Fft.transform ~inverse:false re im;
  Alcotest.(check bool) "re" true (Numeric.Vec.max_abs_diff exp_re re < 1e-9);
  Alcotest.(check bool) "im" true (Numeric.Vec.max_abs_diff exp_im im < 1e-9)

let test_bad_length_rejected () =
  Alcotest.check_raises "length 3"
    (Invalid_argument "Fft.transform: length not a power of two") (fun () ->
      Numeric.Fft.transform ~inverse:false (Array.make 3 0.) (Array.make 3 0.))

let test_2d_roundtrip () =
  let rows = 4 and cols = 8 in
  let rng = Numeric.Rng.create 5 in
  let re = Array.init (rows * cols) (fun _ -> Numeric.Rng.uniform rng (-1.) 1.) in
  let im = Array.make (rows * cols) 0. in
  let re0 = Array.copy re in
  Numeric.Fft.transform2 ~inverse:false ~rows ~cols re im;
  Numeric.Fft.transform2 ~inverse:true ~rows ~cols re im;
  Alcotest.(check bool) "2d roundtrip" true (Numeric.Vec.max_abs_diff re0 re < 1e-9)

let naive_cyclic_convolve ~rows ~cols a b =
  let out = Array.make (rows * cols) 0. in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let acc = ref 0. in
      for r' = 0 to rows - 1 do
        for c' = 0 to cols - 1 do
          let rr = (r - r' + rows) mod rows and cc = (c - c' + cols) mod cols in
          acc := !acc +. (a.((r' * cols) + c') *. b.((rr * cols) + cc))
        done
      done;
      out.((r * cols) + c) <- !acc
    done
  done;
  out

let test_convolve_matches_naive () =
  let rows = 4 and cols = 4 in
  let rng = Numeric.Rng.create 6 in
  let a = Array.init (rows * cols) (fun _ -> Numeric.Rng.uniform rng (-1.) 1.) in
  let b = Array.init (rows * cols) (fun _ -> Numeric.Rng.uniform rng (-1.) 1.) in
  let fast = Numeric.Fft.convolve2 ~rows ~cols a b in
  let slow = naive_cyclic_convolve ~rows ~cols a b in
  Alcotest.(check bool) "convolution" true (Numeric.Vec.max_abs_diff slow fast < 1e-8)

(* ------------------------------------------------------------------ *)
(* Real-to-real transforms (the Poisson fast path's building blocks)   *)

let naive_dct2 x =
  let n = Array.length x in
  Array.init n (fun k ->
      let acc = ref 0. in
      for j = 0 to n - 1 do
        acc :=
          !acc
          +. x.(j)
             *. cos (Float.pi *. float_of_int (k * ((2 * j) + 1))
                     /. (2. *. float_of_int n))
      done;
      !acc)

let naive_dst2 x =
  let n = Array.length x in
  Array.init n (fun k ->
      let acc = ref 0. in
      for j = 0 to n - 1 do
        acc :=
          !acc
          +. x.(j)
             *. sin (Float.pi *. float_of_int ((k + 1) * ((2 * j) + 1))
                     /. (2. *. float_of_int n))
      done;
      !acc)

let test_dct2_matches_naive () =
  List.iter
    (fun n ->
      let rng = Numeric.Rng.create (100 + n) in
      let x = Array.init n (fun _ -> Numeric.Rng.uniform rng (-5.) 5.) in
      let fast = Numeric.Fft.dct2 x in
      let slow = naive_dct2 x in
      Alcotest.(check bool)
        (Printf.sprintf "dct2 n=%d" n)
        true
        (Numeric.Vec.max_abs_diff slow fast < 1e-8))
    [ 1; 2; 4; 8; 16; 32 ]

let test_dst2_matches_naive () =
  List.iter
    (fun n ->
      let rng = Numeric.Rng.create (200 + n) in
      let x = Array.init n (fun _ -> Numeric.Rng.uniform rng (-5.) 5.) in
      let fast = Numeric.Fft.dst2 x in
      let slow = naive_dst2 x in
      Alcotest.(check bool)
        (Printf.sprintf "dst2 n=%d" n)
        true
        (Numeric.Vec.max_abs_diff slow fast < 1e-8))
    [ 2; 4; 8; 16; 32 ]

let test_convolve_scratch_bitwise () =
  let rows = 8 and cols = 16 in
  let rng = Numeric.Rng.create 31 in
  let a = Array.init (rows * cols) (fun _ -> Numeric.Rng.uniform rng (-1.) 1.) in
  let b = Array.init (rows * cols) (fun _ -> Numeric.Rng.uniform rng (-1.) 1.) in
  let plain = Numeric.Fft.convolve2 ~rows ~cols a b in
  let scratch = Numeric.Fft.conv_scratch ~rows ~cols in
  (* Two rounds through the same scratch: results must be bitwise the
     allocating call's, and the second round must not be polluted by the
     first. *)
  for _ = 1 to 2 do
    let reused = Numeric.Fft.convolve2 ~scratch ~rows ~cols a b in
    Array.iteri
      (fun i v ->
        if Int64.bits_of_float v <> Int64.bits_of_float plain.(i) then
          Alcotest.failf "scratch convolution differs at %d: %h vs %h" i
            reused.(i) plain.(i))
      reused
  done

let dct_roundtrip_gen =
  QCheck.(array_of_size (QCheck.Gen.return 32) (float_range (-10.) 10.))

let prop_dct2_roundtrip =
  QCheck.Test.make ~name:"idct2 inverts dct2" dct_roundtrip_gen (fun x ->
      Numeric.Vec.max_abs_diff x (Numeric.Fft.idct2 (Numeric.Fft.dct2 x)) < 1e-9)

let prop_dst2_roundtrip =
  QCheck.Test.make ~name:"idst2 inverts dst2" dct_roundtrip_gen (fun x ->
      Numeric.Vec.max_abs_diff x (Numeric.Fft.idst2 (Numeric.Fft.dst2 x)) < 1e-9)

let signal_gen =
  QCheck.(array_of_size (QCheck.Gen.return 16) (float_range (-10.) 10.))

let prop_parseval =
  QCheck.Test.make ~name:"Parseval: energy preserved up to 1/n" signal_gen
    (fun re ->
      let im = Array.make (Array.length re) 0. in
      let time_energy = Numeric.Vec.dot re re in
      let re' = Array.copy re and im' = Array.copy im in
      Numeric.Fft.transform ~inverse:false re' im';
      let freq_energy =
        (Numeric.Vec.dot re' re' +. Numeric.Vec.dot im' im')
        /. float_of_int (Array.length re)
      in
      Float.abs (time_energy -. freq_energy) < 1e-6 *. (1. +. time_energy))

let prop_linearity =
  QCheck.Test.make ~name:"FFT is linear" (QCheck.pair signal_gen signal_gen)
    (fun (a, b) ->
      let n = Array.length a in
      let fft x =
        let re = Array.copy x and im = Array.make n 0. in
        Numeric.Fft.transform ~inverse:false re im;
        (re, im)
      in
      let sum = Array.init n (fun i -> a.(i) +. b.(i)) in
      let sre, _ = fft sum in
      let are, _ = fft a in
      let bre, _ = fft b in
      let combined = Array.init n (fun i -> are.(i) +. bre.(i)) in
      Numeric.Vec.max_abs_diff sre combined < 1e-6)

let suite =
  [
    Alcotest.test_case "pow2 helpers" `Quick test_pow2_helpers;
    Alcotest.test_case "impulse spectrum" `Quick test_impulse_spectrum_flat;
    Alcotest.test_case "constant spectrum" `Quick test_constant_spectrum_impulse;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "matches naive DFT" `Quick test_matches_naive_dft;
    Alcotest.test_case "bad length" `Quick test_bad_length_rejected;
    Alcotest.test_case "2d roundtrip" `Quick test_2d_roundtrip;
    Alcotest.test_case "convolution vs naive" `Quick test_convolve_matches_naive;
    Alcotest.test_case "dct2 vs naive" `Quick test_dct2_matches_naive;
    Alcotest.test_case "dst2 vs naive" `Quick test_dst2_matches_naive;
    Alcotest.test_case "scratch convolution bitwise" `Quick
      test_convolve_scratch_bitwise;
    QCheck_alcotest.to_alcotest prop_dct2_roundtrip;
    QCheck_alcotest.to_alcotest prop_dst2_roundtrip;
    QCheck_alcotest.to_alcotest prop_parseval;
    QCheck_alcotest.to_alcotest prop_linearity;
  ]
