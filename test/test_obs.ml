(* Tests for the Obs observability layer: Stat merge algebra, clock and
   timer behaviour, the metric registry, the JSON writer/parser pair and
   the telemetry sinks.  The merge and round-trip laws are checked as
   QCheck properties over random values, per the paper-repro test plan:
   the trace format must survive a write/parse cycle bit-for-bit so the
   convergence-regression suite can compare traces textually. *)

(* --- generators ------------------------------------------------------ *)

(* Finite floats with awkward mantissas and exponents; NaN/∞ are encoded
   as null in JSON and are exercised separately. *)
let finite_float_gen =
  QCheck.Gen.(
    map2
      (fun m e -> Float.ldexp (float_of_int m) e)
      (int_range (-1_000_000_000) 1_000_000_000)
      (int_range (-30) 30))

let finite_float =
  QCheck.make ~print:(Printf.sprintf "%.17g") finite_float_gen

let float_list = QCheck.(list_of_size (Gen.int_bound 8) finite_float)

let stat_of = List.fold_left Obs.Stat.observe Obs.Stat.zero

(* count/min/max merge exactly; total only up to FP reassociation. *)
let same_exact (a : Obs.Stat.t) (b : Obs.Stat.t) =
  a.Obs.Stat.count = b.Obs.Stat.count
  && a.Obs.Stat.min = b.Obs.Stat.min
  && a.Obs.Stat.max = b.Obs.Stat.max

let close a b =
  a = b || Float.abs (a -. b) <= 1e-9 *. (1. +. Float.abs a +. Float.abs b)

(* --- Stat merge algebra ---------------------------------------------- *)

let prop_merge_associative =
  QCheck.Test.make ~count:300 ~name:"Stat.merge associative"
    QCheck.(triple float_list float_list float_list)
    (fun (a, b, c) ->
      let sa = stat_of a and sb = stat_of b and sc = stat_of c in
      let l = Obs.Stat.merge (Obs.Stat.merge sa sb) sc in
      let r = Obs.Stat.merge sa (Obs.Stat.merge sb sc) in
      same_exact l r && close l.Obs.Stat.total r.Obs.Stat.total)

let prop_merge_commutative =
  QCheck.Test.make ~count:300 ~name:"Stat.merge commutative"
    QCheck.(pair float_list float_list)
    (fun (a, b) ->
      let sa = stat_of a and sb = stat_of b in
      let l = Obs.Stat.merge sa sb and r = Obs.Stat.merge sb sa in
      (* IEEE addition is commutative, so even total matches exactly. *)
      same_exact l r && l.Obs.Stat.total = r.Obs.Stat.total)

let prop_merge_zero_identity =
  QCheck.Test.make ~count:300 ~name:"Stat.merge zero identity" float_list
    (fun a ->
      let s = stat_of a in
      let l = Obs.Stat.merge Obs.Stat.zero s in
      let r = Obs.Stat.merge s Obs.Stat.zero in
      same_exact l s && same_exact r s
      && l.Obs.Stat.total = s.Obs.Stat.total
      && r.Obs.Stat.total = s.Obs.Stat.total)

let prop_merge_matches_concat =
  QCheck.Test.make ~count:300
    ~name:"Stat.merge of two streams = Stat of the concatenation"
    QCheck.(pair float_list float_list)
    (fun (a, b) ->
      let merged = Obs.Stat.merge (stat_of a) (stat_of b) in
      let folded = stat_of (a @ b) in
      same_exact merged folded
      && close merged.Obs.Stat.total folded.Obs.Stat.total)

let test_stat_basics () =
  Alcotest.(check bool) "zero is zero" true (Obs.Stat.is_zero Obs.Stat.zero);
  Alcotest.(check (float 0.)) "mean of zero" 0. (Obs.Stat.mean Obs.Stat.zero);
  let s = Obs.Stat.of_value 3.5 in
  Alcotest.(check int) "count" 1 s.Obs.Stat.count;
  Alcotest.(check (float 0.)) "mean" 3.5 (Obs.Stat.mean s);
  Alcotest.(check (float 0.)) "min" 3.5 s.Obs.Stat.min;
  Alcotest.(check (float 0.)) "max" 3.5 s.Obs.Stat.max;
  let s2 = Obs.Stat.observe s (-1.) in
  Alcotest.(check (float 0.)) "min updates" (-1.) s2.Obs.Stat.min;
  Alcotest.(check (float 0.)) "max keeps" 3.5 s2.Obs.Stat.max

(* --- clock and timer -------------------------------------------------- *)

let test_clock_monotone () =
  let t0 = Obs.Clock.now () in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "elapsed never negative" true
      (Obs.Clock.elapsed_since t0 >= 0.)
  done;
  (* A reference point in the future must clamp to zero, not go
     negative — this is what keeps timings monotone across clock
     steps. *)
  Alcotest.(check (float 0.)) "future reference clamps" 0.
    (Obs.Clock.elapsed_since (Obs.Clock.now () +. 3600.))

let with_registry f =
  Obs.Registry.set_enabled true;
  Obs.Registry.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Registry.reset ();
      Obs.Registry.set_enabled false)
    f

let test_timer_accumulates () =
  with_registry (fun () ->
      for i = 1 to 5 do
        let r = Obs.Timer.time "test/phase" (fun () -> i * i) in
        Alcotest.(check int) "passes result through" (i * i) r
      done;
      let s = Obs.Registry.get "test/phase" in
      Alcotest.(check int) "one observation per call" 5 s.Obs.Stat.count;
      Alcotest.(check bool) "elapsed times non-negative" true
        (s.Obs.Stat.min >= 0. && s.Obs.Stat.total >= s.Obs.Stat.max))

let test_timer_records_on_exception () =
  with_registry (fun () ->
      (try Obs.Timer.time "test/fail" (fun () -> failwith "boom")
       with Failure _ -> ());
      Alcotest.(check int) "failing phase still timed" 1
        (Obs.Registry.get "test/fail").Obs.Stat.count)

(* --- registry --------------------------------------------------------- *)

let test_registry_disabled_is_noop () =
  Obs.Registry.set_enabled false;
  Obs.Registry.reset ();
  Obs.Registry.observe "off/x" 1.;
  Obs.Registry.incr "off/x";
  ignore (Obs.Timer.time "off/t" (fun () -> 42));
  Alcotest.(check bool) "observe dropped" true
    (Obs.Stat.is_zero (Obs.Registry.get "off/x"));
  Alcotest.(check bool) "timer dropped" true
    (Obs.Stat.is_zero (Obs.Registry.get "off/t"));
  Alcotest.(check int) "snapshot empty" 0
    (List.length (Obs.Registry.snapshot ()))

let test_registry_counters () =
  with_registry (fun () ->
      Obs.Registry.incr "cg/solves";
      Obs.Registry.incr "cg/solves";
      Obs.Registry.incr ~by:3. "cg/solves";
      let s = Obs.Registry.get "cg/solves" in
      Alcotest.(check int) "bumps" 3 s.Obs.Stat.count;
      Alcotest.(check (float 0.)) "total" 5. s.Obs.Stat.total;
      Obs.Registry.reset ();
      Alcotest.(check bool) "reset drops" true
        (Obs.Stat.is_zero (Obs.Registry.get "cg/solves")))

let test_registry_rollup () =
  with_registry (fun () ->
      Obs.Registry.observe "placer/assemble" 1.;
      Obs.Registry.observe "placer/solve" 2.;
      Obs.Registry.observe "placer/solve" 3.;
      Obs.Registry.observe "other" 10.;
      let rolled = Obs.Registry.rollup () in
      match List.assoc_opt "placer" rolled with
      | None -> Alcotest.fail "no rollup entry for placer"
      | Some s ->
        Alcotest.(check int) "children merged" 3 s.Obs.Stat.count;
        Alcotest.(check (float 0.)) "totals summed" 6. s.Obs.Stat.total;
        Alcotest.(check (float 0.)) "min across children" 1. s.Obs.Stat.min;
        Alcotest.(check bool) "leaves kept" true
          (List.mem_assoc "placer/solve" rolled))

(* --- JSON writer/parser ---------------------------------------------- *)

let rec json_sized k =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return Obs.Json.Null;
        map (fun b -> Obs.Json.Bool b) bool;
        map (fun f -> Obs.Json.Num f) finite_float_gen;
        map (fun s -> Obs.Json.Str s) (string_size ~gen:printable (int_bound 12));
      ]
  in
  if k = 0 then leaf
  else
    frequency
      [
        (3, leaf);
        ( 1,
          map (fun l -> Obs.Json.Arr l)
            (list_size (int_bound 4) (json_sized (k / 2))) );
        ( 1,
          map (fun l -> Obs.Json.Obj l)
            (list_size (int_bound 4)
               (pair (string_size ~gen:printable (int_bound 8))
                  (json_sized (k / 2)))) );
      ]

let json_arb =
  QCheck.make ~print:Obs.Json.to_string QCheck.Gen.(sized json_sized)

let prop_json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"Json.of_string inverts Json.to_string"
    json_arb
    (fun v ->
      match Obs.Json.of_string (Obs.Json.to_string v) with
      | Ok v' -> v' = v
      | Error _ -> false)

let prop_number_roundtrip_bitwise =
  QCheck.Test.make ~count:1000 ~name:"numbers round-trip bit-for-bit"
    finite_float
    (fun f ->
      match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Num f)) with
      | Ok (Obs.Json.Num f') ->
        Int64.bits_of_float f' = Int64.bits_of_float f
      | _ -> false)

let test_json_corner_cases () =
  let ok s = Result.is_ok (Obs.Json.of_string s) in
  Alcotest.(check bool) "escaped string" true
    (Obs.Json.of_string {|"a\"b\\c\nA"|} = Ok (Obs.Json.Str "a\"b\\c\nA"));
  Alcotest.(check bool) "nan writes as null" true
    (Obs.Json.to_string (Obs.Json.Num Float.nan) = "null");
  Alcotest.(check bool) "inf writes as null" true
    (Obs.Json.to_string (Obs.Json.Num Float.infinity) = "null");
  Alcotest.(check bool) "trailing garbage rejected" false (ok "1 2");
  Alcotest.(check bool) "bare word rejected" false (ok "nope");
  Alcotest.(check bool) "unterminated string rejected" false (ok {|"abc|});
  Alcotest.(check bool) "surrogate escape rejected" false (ok {|"\ud800"|});
  Alcotest.(check bool) "empty object" true (ok "{}");
  Alcotest.(check bool) "whitespace tolerated" true (ok " { \"a\" : [ 1 , 2 ] } ");
  Alcotest.(check (option string)) "member lookup" (Some "v")
    (match Obs.Json.member "k" (Obs.Json.Obj [ ("k", Obs.Json.Str "v") ]) with
    | Some (Obs.Json.Str s) -> Some s
    | _ -> None)

(* --- telemetry records ------------------------------------------------ *)

let sample_iteration step =
  {
    Obs.Telemetry.step;
    hpwl = 123.5 +. float_of_int step;
    quadratic = 77.25;
    overflow = 0.5;
    empty_square_area = 64.;
    force_scale = 0.125;
    max_force = 3.;
    mean_force = 1.5;
    displacement = 10.;
    cg_iterations_x = 7;
    cg_iterations_y = 9;
    cg_residual_x = 1e-7;
    cg_residual_y = 2e-7;
    kernel_cache_hits = 1;
    kernel_cache_misses = 0;
    assembly_reused = true;
    pattern_rebuilds = 1;
    cg_tolerance = 1e-6;
    domains = 2;
    pool_tasks = 12;
    penalty = 1.1;
    lb_hpwl = 123.5 +. float_of_int step;
    ub_hpwl = (if step mod 2 = 0 then Some (140. +. float_of_int step) else None);
    gap = (if step mod 2 = 0 then Some 0.07 else None);
    level = step mod 3;
    congest_strength = (if step mod 2 = 0 then 0.5 else 0.);
    est_overflow = (if step mod 2 = 0 then Some 12.5 else None);
    target_area = float_of_int step *. 2.;
    target_clamped = step mod 4;
    phases = [ ("assemble", 0.001); ("solve", 0.002) ];
  }

let sample_summary =
  {
    Obs.Telemetry.iterations = 42;
    converged = true;
    final_hpwl = 6886.5;
    final_overlap = 0.001;
    wall_time = 1.5;
    stop_reason = Some "gap";
    counters = [ ("cg/iterations", Obs.Stat.of_value 16.) ];
  }

let prop_iteration_roundtrip =
  QCheck.Test.make ~count:300
    ~name:"iteration records round-trip through JSONL text"
    QCheck.(
      pair
        (array_of_size (Gen.return 6) small_nat)
        (array_of_size (Gen.return 13) finite_float))
    (fun (is, fs) ->
      let probed = is.(0) mod 2 = 0 in
      let r =
        {
          Obs.Telemetry.step = 1 + is.(0);
          hpwl = fs.(0);
          quadratic = fs.(1);
          overflow = fs.(2);
          empty_square_area = fs.(3);
          force_scale = fs.(4);
          max_force = fs.(5);
          mean_force = fs.(6);
          displacement = fs.(7);
          cg_iterations_x = is.(1);
          cg_iterations_y = is.(2);
          cg_residual_x = fs.(8);
          cg_residual_y = fs.(9);
          kernel_cache_hits = is.(3);
          kernel_cache_misses = is.(4);
          assembly_reused = is.(4) mod 2 = 0;
          pattern_rebuilds = is.(3);
          cg_tolerance = Float.abs fs.(9);
          domains = 1 + (is.(5) mod 8);
          pool_tasks = is.(5);
          penalty = Float.abs fs.(11);
          lb_hpwl = fs.(0);
          ub_hpwl = (if probed then Some fs.(12) else None);
          gap = (if probed then Some fs.(10) else None);
          level = is.(1) mod 4;
          congest_strength = Float.abs fs.(11);
          est_overflow = (if probed then Some (Float.abs fs.(12)) else None);
          target_area = Float.abs fs.(10);
          target_clamped = is.(2) mod 5;
          phases = [ ("assemble", Float.abs fs.(10)) ];
        }
      in
      let s = Obs.Json.to_string (Obs.Telemetry.iteration_to_json r) in
      match Obs.Json.of_string s with
      | Error _ -> false
      | Ok v -> (
        match Obs.Telemetry.iteration_of_json v with
        | Error _ -> false
        | Ok r' -> r' = r))

let test_summary_roundtrip () =
  let s = Obs.Json.to_string (Obs.Telemetry.summary_to_json sample_summary) in
  match Obs.Json.of_string s with
  | Error e -> Alcotest.failf "summary does not parse: %s" e
  | Ok v -> (
    match Obs.Telemetry.summary_of_json v with
    | Error e -> Alcotest.failf "summary does not validate: %s" e
    | Ok s' ->
      Alcotest.(check bool) "summary round-trips" true (s' = sample_summary))

let test_iteration_validation_rejects () =
  let bad_record =
    match Obs.Telemetry.iteration_to_json (sample_iteration 1) with
    | Obs.Json.Obj fields ->
      Obs.Json.Obj
        (List.map
           (fun (k, v) ->
             if k = "record" then (k, Obs.Json.Str "banana") else (k, v))
           fields)
    | _ -> assert false
  in
  Alcotest.(check bool) "wrong record tag rejected" true
    (Result.is_error (Obs.Telemetry.iteration_of_json bad_record));
  Alcotest.(check bool) "non-object rejected" true
    (Result.is_error (Obs.Telemetry.iteration_of_json (Obs.Json.Num 1.)))

let v2_only_fields = [ "assembly_reused"; "pattern_rebuilds"; "cg_tolerance" ]

let v3_only_fields = [ "penalty"; "lb_hpwl"; "ub_hpwl"; "gap" ]

let v4_only_fields = [ "level" ]

let v5_only_fields =
  [ "congest_strength"; "est_overflow"; "target_area"; "target_clamped" ]

let downgrade_to schema drop = function
  | Obs.Json.Obj fields ->
    Obs.Json.Obj
      (List.filter_map
         (fun (k, v) ->
           if List.mem k drop then None
           else if k = "schema" then Some (k, Obs.Json.Num schema)
           else Some (k, v))
         fields)
  | _ -> Alcotest.fail "iteration json is not an object"

let test_schema_v1_compat () =
  (* A v1 record (pre-dating the cached assembly and the convergence
     controller) has neither the v2 nor the v3 fields and must parse
     with the defaults matching what the v1 placer did. *)
  (match
     Obs.Telemetry.iteration_of_json
       (downgrade_to 1.
          (v2_only_fields @ v3_only_fields @ v4_only_fields @ v5_only_fields)
          (Obs.Telemetry.iteration_to_json (sample_iteration 4)))
   with
  | Error e -> Alcotest.failf "v1 record rejected: %s" e
  | Ok it ->
    Alcotest.(check bool) "v1 default: not reused" false
      it.Obs.Telemetry.assembly_reused;
    Alcotest.(check int) "v1 default: no rebuild count" 0
      it.Obs.Telemetry.pattern_rebuilds;
    Alcotest.(check bool) "v1 default: fixed 1e-8 tolerance" true
      (it.Obs.Telemetry.cg_tolerance = 1e-8);
    Alcotest.(check bool) "v1 default: unit penalty" true
      (it.Obs.Telemetry.penalty = 1.0);
    Alcotest.(check int) "v1 default: flat level" 0 it.Obs.Telemetry.level;
    Alcotest.(check bool) "v1 default: no congest push" true
      (it.Obs.Telemetry.congest_strength = 0.);
    Alcotest.(check bool) "v1 default: no overflow estimate" true
      (it.Obs.Telemetry.est_overflow = None);
    Alcotest.(check bool) "v1 default: empty target map" true
      (it.Obs.Telemetry.target_area = 0.);
    Alcotest.(check int) "v1 default: no clamped bins" 0
      it.Obs.Telemetry.target_clamped;
    Alcotest.(check int) "payload survives" 4 it.Obs.Telemetry.step);
  (* The same omission under the current schema is a validation error
     (ub_hpwl/gap excepted: absence legitimately means "not probed"). *)
  let strip_field field = function
    | Obs.Json.Obj fields ->
      Obs.Json.Obj (List.filter (fun (k, _) -> k <> field) fields)
    | _ -> Alcotest.fail "iteration json is not an object"
  in
  List.iter
    (fun field ->
      Alcotest.(check bool)
        (Printf.sprintf "current schema without %s rejected" field)
        true
        (Result.is_error
           (Obs.Telemetry.iteration_of_json
              (strip_field field
                 (Obs.Telemetry.iteration_to_json (sample_iteration 4))))))
    (v2_only_fields
    @ [ "penalty"; "lb_hpwl"; "level" ]
    @ [ "congest_strength"; "target_area"; "target_clamped" ]);
  (* Unknown future schemas still fail loudly. *)
  let with_schema v = function
    | Obs.Json.Obj fields ->
      Obs.Json.Obj
        (List.map
           (fun (k, x) -> if k = "schema" then (k, Obs.Json.Num v) else (k, x))
           fields)
    | _ -> Alcotest.fail "iteration json is not an object"
  in
  Alcotest.(check bool) "schema 6 rejected" true
    (Result.is_error
       (Obs.Telemetry.iteration_of_json
          (with_schema 6. (Obs.Telemetry.iteration_to_json (sample_iteration 1)))))

let test_schema_v2_compat () =
  (* A v2 trace (pre-dating the convergence controller) parses with the
     defaulted controller fields: static unit penalty, the quadratic
     HPWL as its own lower bound, and no upper-bound probes. *)
  match
    Obs.Telemetry.iteration_of_json
      (downgrade_to 2.
         (v3_only_fields @ v4_only_fields @ v5_only_fields)
         (Obs.Telemetry.iteration_to_json (sample_iteration 6)))
  with
  | Error e -> Alcotest.failf "v2 record rejected: %s" e
  | Ok it ->
    Alcotest.(check bool) "v2 default: unit penalty" true
      (it.Obs.Telemetry.penalty = 1.0);
    Alcotest.(check bool) "v2 default: lb = hpwl" true
      (it.Obs.Telemetry.lb_hpwl = it.Obs.Telemetry.hpwl);
    Alcotest.(check bool) "v2 default: no ub" true
      (it.Obs.Telemetry.ub_hpwl = None);
    Alcotest.(check bool) "v2 default: no gap" true
      (it.Obs.Telemetry.gap = None);
    (* v2 fields survive the v2 parse untouched. *)
    Alcotest.(check bool) "v2 payload: reused" true
      it.Obs.Telemetry.assembly_reused;
    Alcotest.(check int) "payload survives" 6 it.Obs.Telemetry.step

let test_schema_v4_compat () =
  (* A v4 trace (pre-dating the routability loop) parses with the
     congestion fields defaulted to "loop disabled". *)
  match
    Obs.Telemetry.iteration_of_json
      (downgrade_to 4. v5_only_fields
         (Obs.Telemetry.iteration_to_json (sample_iteration 9)))
  with
  | Error e -> Alcotest.failf "v4 record rejected: %s" e
  | Ok it ->
    Alcotest.(check bool) "v4 default: no congest push" true
      (it.Obs.Telemetry.congest_strength = 0.);
    Alcotest.(check bool) "v4 default: no overflow estimate" true
      (it.Obs.Telemetry.est_overflow = None);
    Alcotest.(check bool) "v4 default: empty target map" true
      (it.Obs.Telemetry.target_area = 0.);
    Alcotest.(check int) "v4 default: no clamped bins" 0
      it.Obs.Telemetry.target_clamped;
    (* v4 fields survive the v4 parse untouched. *)
    Alcotest.(check int) "v4 payload: level" (sample_iteration 9).Obs.Telemetry.level
      it.Obs.Telemetry.level;
    Alcotest.(check int) "payload survives" 9 it.Obs.Telemetry.step

let test_summary_v2_compat () =
  (* v2 summaries have no stop_reason; parse defaults it to None. *)
  let without_reason =
    match Obs.Telemetry.summary_to_json sample_summary with
    | Obs.Json.Obj fields ->
      Obs.Json.Obj (List.filter (fun (k, _) -> k <> "stop_reason") fields)
    | _ -> Alcotest.fail "summary json is not an object"
  in
  match Obs.Telemetry.summary_of_json without_reason with
  | Error e -> Alcotest.failf "v2 summary rejected: %s" e
  | Ok s ->
    Alcotest.(check bool) "v2 default: no stop reason" true
      (s.Obs.Telemetry.stop_reason = None);
    Alcotest.(check int) "payload survives" 42 s.Obs.Telemetry.iterations

let test_strip_volatile () =
  let j = Obs.Telemetry.iteration_to_json (sample_iteration 3) in
  let stripped = Obs.Telemetry.strip_volatile j in
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " stripped") true
        (Obs.Json.member f stripped = None))
    Obs.Telemetry.volatile_fields;
  Alcotest.(check bool) "payload kept" true
    (Obs.Json.member "hpwl" stripped <> None
    && Obs.Json.member "step" stripped <> None)

(* --- sinks ------------------------------------------------------------ *)

let test_sink_collecting () =
  Obs.Sink.clear ();
  Alcotest.(check bool) "inactive by default" false (Obs.Sink.active ());
  let sink, read = Obs.Sink.collecting () in
  Obs.Sink.with_sink sink (fun () ->
      Alcotest.(check bool) "active inside with_sink" true (Obs.Sink.active ());
      Obs.Sink.iteration (sample_iteration 1);
      Obs.Sink.iteration (sample_iteration 2);
      Obs.Sink.summary sample_summary);
  Alcotest.(check bool) "restored after with_sink" false (Obs.Sink.active ());
  let records, summary = read () in
  Alcotest.(check (list int)) "records in emission order" [ 1; 2 ]
    (List.map (fun r -> r.Obs.Telemetry.step) records);
  Alcotest.(check bool) "summary captured" true (summary <> None);
  (* With no sink installed, records are dropped, not queued. *)
  Obs.Sink.iteration (sample_iteration 3);
  let records', _ = read () in
  Alcotest.(check int) "no sink, no record" 2 (List.length records')

let test_sink_jsonl () =
  let file = Filename.temp_file "obs_jsonl" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      let oc = open_out file in
      let sink = Obs.Sink.jsonl oc in
      sink.Obs.Sink.on_iteration (sample_iteration 1);
      sink.Obs.Sink.on_summary sample_summary;
      close_out oc;
      let ic = open_in file in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      let lines = List.rev !lines in
      Alcotest.(check int) "one line per record" 2 (List.length lines);
      let tag line =
        match Obs.Json.of_string line with
        | Error e -> Alcotest.failf "unparsable line %S: %s" line e
        | Ok v -> (
          match Obs.Json.member "record" v with
          | Some (Obs.Json.Str s) -> s
          | _ -> Alcotest.failf "line without record tag: %s" line)
      in
      Alcotest.(check (list string)) "tags" [ "iteration"; "summary" ]
        (List.map tag lines))

let suite =
  [
    Alcotest.test_case "stat basics" `Quick test_stat_basics;
    QCheck_alcotest.to_alcotest prop_merge_associative;
    QCheck_alcotest.to_alcotest prop_merge_commutative;
    QCheck_alcotest.to_alcotest prop_merge_zero_identity;
    QCheck_alcotest.to_alcotest prop_merge_matches_concat;
    Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
    Alcotest.test_case "timer accumulates" `Quick test_timer_accumulates;
    Alcotest.test_case "timer records on exception" `Quick
      test_timer_records_on_exception;
    Alcotest.test_case "registry disabled is a no-op" `Quick
      test_registry_disabled_is_noop;
    Alcotest.test_case "registry counters" `Quick test_registry_counters;
    Alcotest.test_case "registry rollup" `Quick test_registry_rollup;
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
    QCheck_alcotest.to_alcotest prop_number_roundtrip_bitwise;
    Alcotest.test_case "json corner cases" `Quick test_json_corner_cases;
    QCheck_alcotest.to_alcotest prop_iteration_roundtrip;
    Alcotest.test_case "summary round-trip" `Quick test_summary_roundtrip;
    Alcotest.test_case "iteration validation rejects" `Quick
      test_iteration_validation_rejects;
    Alcotest.test_case "schema v1 compatibility" `Quick test_schema_v1_compat;
    Alcotest.test_case "schema v2 compatibility" `Quick test_schema_v2_compat;
    Alcotest.test_case "schema v4 compatibility" `Quick test_schema_v4_compat;
    Alcotest.test_case "summary v2 compatibility" `Quick
      test_summary_v2_compat;
    Alcotest.test_case "strip_volatile" `Quick test_strip_volatile;
    Alcotest.test_case "collecting sink" `Quick test_sink_collecting;
    Alcotest.test_case "jsonl sink" `Quick test_sink_jsonl;
  ]
