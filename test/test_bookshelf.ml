(* Round-trip and parsing tests for the Bookshelf format subset. *)

let with_tempdir f =
  let dir = Filename.temp_file "bookshelf" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let bs_exn = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Netlist.Bookshelf.error_message e)

let sample () =
  let prof = Circuitgen.Profiles.find "fract" in
  let circuit, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params ~scale:0.5 prof ~seed:77)
  in
  let p = Circuitgen.Gen.initial_placement circuit pads in
  (circuit, p)

let test_roundtrip_counts_and_hpwl () =
  let circuit, p = sample () in
  with_tempdir (fun dir ->
      let base = Filename.concat dir "ckt" in
      Netlist.Bookshelf.save base circuit p;
      let circuit', p' = bs_exn (Netlist.Bookshelf.load_aux (base ^ ".aux")) in
      Alcotest.(check int) "cells" (Netlist.Circuit.num_cells circuit)
        (Netlist.Circuit.num_cells circuit');
      Alcotest.(check int) "nets" (Netlist.Circuit.num_nets circuit)
        (Netlist.Circuit.num_nets circuit');
      Alcotest.(check (float 1e-3)) "row height" circuit.Netlist.Circuit.row_height
        circuit'.Netlist.Circuit.row_height;
      (* HPWL of the loaded placement matches the saved one. *)
      Alcotest.(check (float 1.0)) "hpwl"
        (Metrics.Wirelength.hpwl circuit p)
        (Metrics.Wirelength.hpwl circuit' p'))

let test_roundtrip_positions () =
  let circuit, p = sample () in
  with_tempdir (fun dir ->
      let base = Filename.concat dir "ckt" in
      Netlist.Bookshelf.save base circuit p;
      let _, p' = bs_exn (Netlist.Bookshelf.load_aux (base ^ ".aux")) in
      Alcotest.(check bool) "x preserved" true
        (Numeric.Vec.max_abs_diff p.Netlist.Placement.x p'.Netlist.Placement.x < 1e-3);
      Alcotest.(check bool) "y preserved" true
        (Numeric.Vec.max_abs_diff p.Netlist.Placement.y p'.Netlist.Placement.y < 1e-3))

let test_terminals_roundtrip_fixed () =
  let circuit, p = sample () in
  with_tempdir (fun dir ->
      let base = Filename.concat dir "ckt" in
      Netlist.Bookshelf.save base circuit p;
      let circuit', _ = bs_exn (Netlist.Bookshelf.load_aux (base ^ ".aux")) in
      Array.iteri
        (fun i (cl : Netlist.Cell.t) ->
          Alcotest.(check bool)
            (Printf.sprintf "fixedness of %d" i)
            cl.Netlist.Cell.fixed
            circuit'.Netlist.Circuit.cells.(i).Netlist.Cell.fixed)
        circuit.Netlist.Circuit.cells)

let test_driver_preserved () =
  let circuit, p = sample () in
  with_tempdir (fun dir ->
      let base = Filename.concat dir "ckt" in
      Netlist.Bookshelf.save base circuit p;
      let circuit', _ = bs_exn (Netlist.Bookshelf.load_aux (base ^ ".aux")) in
      Array.iteri
        (fun i (net : Netlist.Net.t) ->
          Alcotest.(check int)
            (Printf.sprintf "driver of net %d" i)
            (Netlist.Net.driver net).Netlist.Net.cell
            (Netlist.Net.driver circuit'.Netlist.Circuit.nets.(i)).Netlist.Net.cell)
        circuit.Netlist.Circuit.nets)

let test_hand_written_benchmark () =
  with_tempdir (fun dir ->
      let file name content =
        let oc = open_out (Filename.concat dir name) in
        output_string oc content;
        close_out oc
      in
      file "t.aux" "RowBasedPlacement : t.nodes t.nets t.pl t.scl\n";
      file "t.nodes"
        "UCLA nodes 1.0\n# comment\nNumNodes : 3\nNumTerminals : 1\n\
         a 8 16\nb 8 16\npad1 4 4 terminal\n";
      file "t.nets"
        "UCLA nets 1.0\nNumNets : 2\nNumPins : 4\n\
         NetDegree : 2 n1\n  a O : 0 0\n  b I : 1 2\n\
         NetDegree : 2 n2\n  pad1 O : 0 0\n  a I : 0 0\n";
      file "t.pl" "UCLA pl 1.0\n\na 10 16 : N\nb 30 16 : N\npad1 0 0 : N /FIXED\n";
      file "t.scl"
        "UCLA scl 1.0\nNumRows : 2\n\
         CoreRow Horizontal\n  Coordinate : 0\n  Height : 16\n  Sitewidth : 1\n  \
         Sitespacing : 1\n  Siteorient : 1\n  Sitesymmetry : 1\n  \
         SubrowOrigin : 0  NumSites : 100\nEnd\n\
         CoreRow Horizontal\n  Coordinate : 16\n  Height : 16\n  Sitewidth : 1\n  \
         Sitespacing : 1\n  Siteorient : 1\n  Sitesymmetry : 1\n  \
         SubrowOrigin : 0  NumSites : 100\nEnd\n";
      let c, p = bs_exn (Netlist.Bookshelf.load_aux (Filename.concat dir "t.aux")) in
      Alcotest.(check int) "cells" 3 (Netlist.Circuit.num_cells c);
      Alcotest.(check int) "nets" 2 (Netlist.Circuit.num_nets c);
      Alcotest.(check int) "rows" 2 (Netlist.Circuit.num_rows c);
      Alcotest.(check (float 1e-9)) "region width" 100.
        (Geometry.Rect.width c.Netlist.Circuit.region);
      (* a at lower-left (10,16) with 8×16 → centre (14, 24). *)
      Alcotest.(check (float 1e-9)) "a centre x" 14. p.Netlist.Placement.x.(0);
      Alcotest.(check (float 1e-9)) "a centre y" 24. p.Netlist.Placement.y.(0);
      Alcotest.(check bool) "pad fixed" true
        c.Netlist.Circuit.cells.(2).Netlist.Cell.fixed;
      (* Driver of n1 is a (the O pin). *)
      Alcotest.(check int) "driver" 0
        (Netlist.Net.driver c.Netlist.Circuit.nets.(0)).Netlist.Net.cell;
      (* Pin offset parsed. *)
      Alcotest.(check (float 1e-9)) "pin dx" 1.
        c.Netlist.Circuit.nets.(0).Netlist.Net.pins.(1).Netlist.Net.dx)

let test_missing_file_rejected () =
  with_tempdir (fun dir ->
      let file = Filename.concat dir "bad.aux" in
      let oc = open_out file in
      output_string oc "RowBasedPlacement : bad.nodes bad.pl bad.scl\n";
      close_out oc;
      match Netlist.Bookshelf.load_aux file with
      | Ok _ -> Alcotest.fail "expected a typed error"
      | Error e ->
        Alcotest.(check bool) "error names a file" true
          (e.Netlist.Bookshelf.file <> ""))

let test_placeable_after_load () =
  (* End-to-end: save → load → place the loaded circuit. *)
  let circuit, p = sample () in
  with_tempdir (fun dir ->
      let base = Filename.concat dir "ckt" in
      Netlist.Bookshelf.save base circuit p;
      let circuit', p0 = bs_exn (Netlist.Bookshelf.load_aux (base ^ ".aux")) in
      let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit' p0 in
      let rep = Legalize.Abacus.legalize circuit' state.Kraftwerk.Placer.placement () in
      Alcotest.(check bool) "legal" true
        (Legalize.Check.is_legal circuit' rep.Legalize.Abacus.placement))

let suite =
  [
    Alcotest.test_case "roundtrip counts/hpwl" `Quick test_roundtrip_counts_and_hpwl;
    Alcotest.test_case "roundtrip positions" `Quick test_roundtrip_positions;
    Alcotest.test_case "terminals fixed" `Quick test_terminals_roundtrip_fixed;
    Alcotest.test_case "driver preserved" `Quick test_driver_preserved;
    Alcotest.test_case "hand-written benchmark" `Quick test_hand_written_benchmark;
    Alcotest.test_case "missing file" `Quick test_missing_file_rejected;
    Alcotest.test_case "placeable after load" `Quick test_placeable_after_load;
  ]
