(* Network serving tests: line framing, addresses, protocol v1/v2 golden
   transcripts, a fuzzed stdio loop, and forked socket servers driven by
   the client library — concurrency equivalence, admission control and
   graceful SIGTERM drain.

   The forked servers exercise exactly the path `place serve --listen`
   runs; children leave via Unix._exit so the test harness's own at_exit
   machinery never runs twice. *)

module P = Engine.Protocol
module J = Obs.Json

(* ------------------------------------------------------------------ *)
(* Frame                                                               *)

let drain_frames f =
  let rec go acc =
    match Server.Frame.next f with
    | None -> List.rev acc
    | Some x -> go (x :: acc)
  in
  go []

let test_frame_chunks () =
  let f = Server.Frame.create () in
  Server.Frame.feed f "hel";
  Alcotest.(check int) "no line yet" 0 (List.length (drain_frames f));
  Server.Frame.feed f "lo\nwor";
  Alcotest.(check bool) "first line" true
    (drain_frames f = [ `Line "hello" ]);
  Server.Frame.feed f "ld\r\ntail";
  Alcotest.(check bool) "crlf stripped" true
    (drain_frames f = [ `Line "world" ]);
  Alcotest.(check int) "partial bytes buffered" 4 (Server.Frame.pending f);
  Server.Frame.feed f "\n\n";
  Alcotest.(check bool) "tail and empty line" true
    (drain_frames f = [ `Line "tail"; `Line "" ])

let test_frame_many_lines_one_feed () =
  let f = Server.Frame.create () in
  Server.Frame.feed f "a\nb\nc\n";
  Alcotest.(check bool) "three lines" true
    (drain_frames f = [ `Line "a"; `Line "b"; `Line "c" ])

let test_frame_overflow () =
  let f = Server.Frame.create ~max_line:8 () in
  Server.Frame.feed f (String.make 20 'x');
  Alcotest.(check bool) "overflow reported once" true
    (drain_frames f = [ `Overflow ]);
  Server.Frame.feed f (String.make 20 'y');
  Alcotest.(check int) "still dropping" 0 (List.length (drain_frames f));
  Server.Frame.feed f "\nok\n";
  Alcotest.(check bool) "resyncs at newline" true
    (drain_frames f = [ `Line "ok" ])

let test_frame_reset () =
  let f = Server.Frame.create () in
  Server.Frame.feed f "stale\nhalf";
  Server.Frame.reset f;
  Alcotest.(check int) "no frames after reset" 0
    (List.length (drain_frames f));
  Alcotest.(check int) "no partial after reset" 0 (Server.Frame.pending f);
  Server.Frame.feed f "fresh\n";
  Alcotest.(check bool) "frames again" true (drain_frames f = [ `Line "fresh" ])

(* ------------------------------------------------------------------ *)
(* Address                                                             *)

let test_address_parse () =
  let ok s expect =
    match Server.Address.of_string s with
    | Ok t -> Alcotest.(check bool) ("parse " ^ s) true (t = expect)
    | Error msg -> Alcotest.failf "parse %s: %s" s msg
  in
  ok "unix:/run/place.sock" (Server.Address.Unix_path "/run/place.sock");
  ok "/run/place.sock" (Server.Address.Unix_path "/run/place.sock");
  ok "tcp:example.org:9000" (Server.Address.Tcp ("example.org", 9000));
  ok "example.org:9000" (Server.Address.Tcp ("example.org", 9000));
  ok ":9000" (Server.Address.Tcp ("127.0.0.1", 9000));
  ok "9000" (Server.Address.Tcp ("127.0.0.1", 9000));
  List.iter
    (fun s ->
      Alcotest.(check bool) ("reject " ^ s) true
        (Result.is_error (Server.Address.of_string s)))
    [ ""; "unix:"; "tcp:host:notaport"; "host:70000" ]

let test_address_roundtrip () =
  List.iter
    (fun s ->
      match Server.Address.of_string s with
      | Error msg -> Alcotest.failf "parse %s: %s" s msg
      | Ok t ->
        Alcotest.(check bool) ("roundtrip " ^ s) true
          (Server.Address.of_string (Server.Address.to_string t) = Ok t))
    [ "unix:/x/y.sock"; "tcp:127.0.0.1:8080"; ":1234" ]

(* ------------------------------------------------------------------ *)
(* Protocol golden transcripts (stdio loop)                            *)

let run_stdio_session ~proto lines =
  let infile = Filename.temp_file "server_test" ".in" in
  let outfile = Filename.temp_file "server_test" ".out" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove infile;
      Sys.remove outfile)
    (fun () ->
      Out_channel.with_open_text infile (fun oc ->
          List.iter (fun l -> output_string oc (l ^ "\n")) lines);
      let sched = Engine.Scheduler.create () in
      In_channel.with_open_text infile (fun ic ->
          Out_channel.with_open_text outfile (fun oc ->
              P.serve ~proto sched ic oc));
      In_channel.with_open_text outfile In_channel.input_lines)

let golden_requests =
  [
    {|{"cmd":"jobs","seq":7}|};
    {|{"cmd":"step"}|};
    {|{"cmd":5,"seq":1}|};
    {|{"cmd":"frobnicate","seq":2}|};
    {|{"cmd":"result","id":3,"seq":3}|};
    {|{"cmd":"submit","seq":4,"job":{"profile":"nope","scale":0.5,"seed":1}}|};
    {|{"cmd":"shutdown","seq":5}|};
  ]

let test_golden_v2 () =
  let expected =
    [
      {|{"ok":true,"seq":7,"jobs":[]}|};
      {|{"ok":true,"stepped":0}|};
      {|{"ok":false,"seq":1,"error":{"code":"parse","message":"field \"cmd\" is not a string"}}|};
      {|{"ok":false,"seq":2,"error":{"code":"unknown_cmd","message":"unknown command \"frobnicate\""}}|};
      {|{"ok":false,"seq":3,"error":{"code":"unknown_id","message":"unknown job id 3"}}|};
      {|{"ok":false,"seq":4,"error":{"code":"bad_spec","message":"source: unknown profile \"nope\""}}|};
      {|{"ok":true,"seq":5,"shutdown":true}|};
    ]
  in
  Alcotest.(check (list string))
    "v2 transcript" expected
    (run_stdio_session ~proto:P.V2 golden_requests)

let test_golden_v1 () =
  let expected =
    [
      {|{"ok":true,"jobs":[]}|};
      {|{"ok":true,"stepped":0}|};
      {|{"ok":false,"error":"field \"cmd\" is not a string"}|};
      {|{"ok":false,"error":"unknown command \"frobnicate\""}|};
      {|{"ok":false,"error":"unknown job id 3"}|};
      {|{"ok":false,"error":"source: unknown profile \"nope\""}|};
      {|{"ok":true,"shutdown":true}|};
    ]
  in
  Alcotest.(check (list string))
    "v1 transcript" expected
    (run_stdio_session ~proto:P.V1 golden_requests)

(* v3 golden transcript: successful submits echo the resolved objective.
   The first submit uses the legacy v2 field shape (mode/effort/timing in
   the job body) and must map losslessly onto the typed record; the second
   submits a structured "objective" directly. *)
let v3_submit_requests =
  [
    {|{"cmd":"submit","seq":1,"job":{"profile":"fract","scale":0.3,"seed":7,"mode":"fast","max_steps":2}}|};
    {|{"cmd":"submit","seq":2,"job":{"profile":"fract","scale":0.3,"seed":7,"max_steps":2,"objective":{"goal":"routability","congest_every":3}}}|};
    {|{"cmd":"submit","seq":3,"job":{"profile":"fract","scale":0.3,"seed":7,"objective":{"goal":"banana"}}}|};
    {|{"cmd":"shutdown","seq":4}|};
  ]

let test_golden_v3 () =
  let expected =
    [
      {|{"ok":true,"seq":1,"id":1,"status":"queued","objective":{"goal":"wirelength","mode":"fast","effort":null,"flow":"flat","congest_every":null,"congest_strength":null}}|};
      {|{"ok":true,"seq":2,"id":2,"status":"queued","objective":{"goal":"routability","mode":"standard","effort":null,"flow":"flat","congest_every":3,"congest_strength":null}}|};
      {|{"ok":false,"seq":3,"error":{"code":"bad_spec","message":"objective: unknown goal \"banana\""}}|};
      {|{"ok":true,"seq":4,"shutdown":true}|};
    ]
  in
  Alcotest.(check (list string))
    "v3 transcript" expected
    (run_stdio_session ~proto:P.V3 v3_submit_requests)

(* The same submits over v2 render bitwise as before this release: no
   "objective" key leaks into v2 replies, even though the structured
   "objective" job field is accepted on the way in. *)
let test_golden_v2_submit_unchanged () =
  let expected =
    [
      {|{"ok":true,"seq":1,"id":1,"status":"queued"}|};
      {|{"ok":true,"seq":2,"id":2,"status":"queued"}|};
      {|{"ok":false,"seq":3,"error":{"code":"bad_spec","message":"objective: unknown goal \"banana\""}}|};
      {|{"ok":true,"seq":4,"shutdown":true}|};
    ]
  in
  Alcotest.(check (list string))
    "v2 submit transcript" expected
    (run_stdio_session ~proto:P.V2 v3_submit_requests)

(* Every failure code render must round-trip through code_of_string. *)
let test_codes_roundtrip () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        ("code " ^ P.code_to_string c)
        true
        (P.code_of_string (P.code_to_string c) = Some c))
    [
      P.Parse;
      P.Unknown_cmd;
      P.Bad_spec;
      P.Unknown_id;
      P.Not_terminal;
      P.Overloaded;
      P.Shutting_down;
    ]

(* ------------------------------------------------------------------ *)
(* Fuzz: arbitrary bytes never kill the loop or go unanswered          *)

let fuzz_serve_responds =
  QCheck.Test.make ~count:200
    ~name:"serve answers every line of arbitrary bytes"
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun raw ->
      (* One request line: strip the line separators fuzzing would turn
         into accidental extra requests. *)
      let line =
        String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) raw
      in
      let responses = run_stdio_session ~proto:P.V2 [ line ] in
      if String.trim line = "" then responses = []
      else
        match responses with
        | [ resp ] -> (
          match J.of_string resp with
          | Ok v -> (
            (* Always a JSON object with an "ok" bool — and unless the
               fuzzer stumbled on a valid command, a typed error. *)
            match J.member "ok" v with
            | Some (J.Bool _) -> true
            | _ -> false)
          | Error _ -> false)
        | _ -> false)

(* ------------------------------------------------------------------ *)
(* Spawned socket servers                                              *)

let temp_sock () =
  let f = Filename.temp_file "server_test" ".sock" in
  Sys.remove f;
  f

(* The server children are real [place serve --listen] processes:
   [Unix.fork] is off-limits once any suite has spun up worker domains
   (the runtime's restriction is sticky), and exec'ing the binary tests
   exactly what production runs.  [create_process] uses posix_spawn, so
   live domains are fine. *)
let place_exe () =
  let candidates =
    [ "../bin/place.exe"; "_build/default/bin/place.exe"; "bin/place.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail "place.exe not built"

let spawn_server args =
  let exe = place_exe () in
  let argv = Array.of_list (exe :: "serve" :: args)
  and null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close null)
    (fun () -> Unix.create_process exe argv null null null)

let connect_exn addr =
  match Server.Client.connect ~retries:40 addr with
  | Ok c -> c
  | Error msg -> Alcotest.failf "connect: %s" msg

let client_exn what = function
  | Ok v -> v
  | Error f -> Alcotest.failf "%s: %s" what (Server.Client.failure_message f)

let reap pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> code
  | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> -1

let fast_spec i =
  Engine.Job.spec
    ~source:(Engine.Source.Profile { name = "fract"; scale = 0.5; seed = 100 + i })
    ~mode:Engine.Job.Fast ~max_steps:6 ()

let solo_result spec =
  let sched = Engine.Scheduler.create () in
  let id = Engine.Scheduler.submit sched spec in
  Engine.Scheduler.drain sched;
  match Engine.Scheduler.result sched id with
  | Some r -> r
  | None -> Alcotest.fail "solo run lost its result"

(* Eight clients multiplexed onto one scheduler: every job's result must
   be bitwise what a solo run of the same spec produces — the
   scheduler's interleaving invariance carried through the socket. *)
let test_eight_clients_bitwise_equal () =
  let sock = temp_sock () in
  let address = Server.Address.Unix_path sock in
  let pid =
    spawn_server [ "--listen"; "unix:" ^ sock; "--concurrency"; "3" ]
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      let n = 8 in
      let clients = List.init n (fun _ -> connect_exn address) in
      (* All submits first, then all waits: the jobs genuinely overlap. *)
      let ids =
        List.mapi
          (fun i c -> (i, c, client_exn "submit" (Server.Client.submit c (fast_spec i))))
          clients
      in
      List.iter
        (fun (i, c, id) ->
          let status, result = client_exn "wait" (Server.Client.wait c id) in
          Alcotest.(check string) (Printf.sprintf "job %d done" id) "done" status;
          let served =
            match result with
            | Some r -> (
              match Engine.Job.result_of_json r with
              | Ok jr -> jr
              | Error e -> Alcotest.failf "result does not validate: %s" e)
            | None -> Alcotest.failf "wait response for %d lacks a result" id
          in
          let solo = solo_result (fast_spec i) in
          Alcotest.(check bool)
            (Printf.sprintf "job %d hpwl bitwise" id)
            true
            (Int64.bits_of_float served.Engine.Job.hpwl
            = Int64.bits_of_float solo.Engine.Job.hpwl);
          Alcotest.(check bool)
            (Printf.sprintf "job %d overlap bitwise" id)
            true
            (Int64.bits_of_float served.Engine.Job.overlap
            = Int64.bits_of_float solo.Engine.Job.overlap);
          Alcotest.(check int)
            (Printf.sprintf "job %d iterations" id)
            solo.Engine.Job.iterations served.Engine.Job.iterations;
          Alcotest.(check bool) (Printf.sprintf "job %d legal" id) true
            served.Engine.Job.legal)
        ids;
      (* The registry is live over the wire. *)
      let m = client_exn "metrics" (Server.Client.metrics (List.hd clients)) in
      (match List.assoc_opt "metrics" m with
      | Some (J.Obj cells) ->
        Alcotest.(check bool) "server counters recorded" true
          (List.mem_assoc "server/requests" cells)
      | _ -> Alcotest.fail "metrics response lacks cells");
      (* Polite shutdown; the child must exit 0. *)
      client_exn "shutdown" (Server.Client.shutdown (List.hd clients));
      List.iter Server.Client.close clients;
      Alcotest.(check int) "server exit code" 0 (reap pid))

let slow_spec i =
  Engine.Job.spec
    ~source:(Engine.Source.Profile { name = "struct"; scale = 0.75; seed = 7 + i })
    ()

(* Admission control and graceful drain on one server: fill the bound,
   meet a typed overloaded refusal (never a dropped connection), then
   SIGTERM mid-load — the parked wait must still be answered, with the
   job degraded to a legal best-so-far placement, and the server must
   exit 0 with every accepted job terminal. *)
let test_admission_and_sigterm_drain () =
  let sock = temp_sock () in
  let address = Server.Address.Unix_path sock in
  let pid =
    spawn_server
      [
        "--listen"; "unix:" ^ sock;
        "--concurrency"; "1";
        "--max-pending"; "1";
        "--drain-grace"; "1";
      ]
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      let c = connect_exn address in
      client_exn "subscribe" (Server.Client.subscribe c);
      let id1 = client_exn "submit A" (Server.Client.submit c (slow_spec 0)) in
      (* Wait until A occupies the run slot, so the queue count below is
         deterministic. *)
      let rec await_running tries =
        if tries = 0 then Alcotest.fail "job 1 never started";
        match client_exn "status" (Server.Client.status c id1) with
        | "queued" ->
          Unix.sleepf 0.02;
          await_running (tries - 1)
        | _ -> ()
      in
      await_running 500;
      let id2 = client_exn "submit B" (Server.Client.submit c (slow_spec 1)) in
      (* Bound hit: the refusal is typed and carries a retry hint. *)
      (match Server.Client.submit c (slow_spec 2) with
      | Ok id -> Alcotest.failf "submit beyond the bound accepted as %d" id
      | Error (Server.Client.Refused e) ->
        Alcotest.(check bool) "overloaded code" true (e.P.code = P.Overloaded);
        (match e.P.retry_after_ms with
        | Some ms -> Alcotest.(check bool) "retry hint sane" true (ms >= 250)
        | None -> Alcotest.fail "overloaded without retry_after_ms")
      | Error (Server.Client.Transport msg) ->
        Alcotest.failf "overload dropped the connection: %s" msg);
      (* SIGTERM mid-load: drain begins; new submissions are refused as
         shutting_down. *)
      Unix.kill pid Sys.sigterm;
      Unix.sleepf 0.1;
      (match Server.Client.submit c (slow_spec 3) with
      | Ok id -> Alcotest.failf "draining server accepted job %d" id
      | Error (Server.Client.Refused e) ->
        Alcotest.(check bool) "shutting_down code" true
          (e.P.code = P.Shutting_down)
      | Error (Server.Client.Transport msg) ->
        Alcotest.failf "drain dropped the connection: %s" msg);
      (* The parked wait is answered once the grace expires and the job
         is cooperatively cancelled — with its legalised best-so-far
         placement embedded. *)
      let status, result = client_exn "wait A" (Server.Client.wait c id1) in
      Alcotest.(check bool) "job 1 terminal" true
        (status = "cancelled" || status = "done");
      (match result with
      | Some r -> (
        match Engine.Job.result_of_json r with
        | Ok jr ->
          Alcotest.(check bool) "best-so-far is legal" true jr.Engine.Job.legal
        | Error e -> Alcotest.failf "result does not validate: %s" e)
      | None -> Alcotest.fail "wait response lacks the result");
      (* Both accepted jobs reached a terminal state before exit: the
         subscribed connection saw their finished events. *)
      let finished = Hashtbl.create 4 in
      let rec collect tries =
        if Hashtbl.length finished < 2 && tries > 0 then (
          match Server.Client.next_event ~timeout_s:0.5 c with
          | Ok (Some ev) ->
            (match (J.member "event" ev, J.member "id" ev) with
            | Some (J.Str "finished"), Some (J.Num id) ->
              Hashtbl.replace finished (int_of_float id) ()
            | _ -> ());
            collect (tries - 1)
          | Ok None -> collect (tries - 1)
          | Error _ -> ())
      in
      collect 40;
      Alcotest.(check bool) "finished event for job 1" true
        (Hashtbl.mem finished id1);
      Alcotest.(check bool) "finished event for job 2" true
        (Hashtbl.mem finished id2);
      Server.Client.close c;
      Alcotest.(check int) "SIGTERM drain exits 0" 0 (reap pid))

(* An oversized request line is answered with a parse error, and the
   connection keeps working. *)
let test_oversized_line_survives () =
  let sock = temp_sock () in
  let address = Server.Address.Unix_path sock in
  let pid = spawn_server [ "--listen"; "unix:" ^ sock ] in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      let c = connect_exn address in
      (* Past the server's 1 MiB line bound. *)
      (match
         Server.Client.request c
           [ ("cmd", J.Str (String.make (2 * 1024 * 1024) 'x')) ]
       with
      | Ok _ -> Alcotest.fail "oversized line accepted"
      | Error (Server.Client.Refused e) ->
        Alcotest.(check bool) "parse code" true (e.P.code = P.Parse)
      | Error (Server.Client.Transport msg) ->
        Alcotest.failf "oversized line killed the connection: %s" msg);
      (* Still serviceable afterwards. *)
      let jobs = client_exn "jobs" (Server.Client.jobs c) in
      Alcotest.(check int) "no jobs" 0 (List.length jobs);
      client_exn "shutdown" (Server.Client.shutdown c);
      Server.Client.close c;
      Alcotest.(check int) "clean exit" 0 (reap pid))

(* The sharded server path: --domains 2 auto-selects worker domains, so
   job slices execute off the poll loop while connections stay serviced.
   Results must still be bitwise what solo runs produce, and the metrics
   response must expose the per-shard scheduler counters. *)
let test_sharded_server_bitwise_and_metrics () =
  let sock = temp_sock () in
  let address = Server.Address.Unix_path sock in
  let pid =
    spawn_server
      [ "--listen"; "unix:" ^ sock; "--concurrency"; "3"; "--domains"; "2" ]
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      let n = 4 in
      let clients = List.init n (fun _ -> connect_exn address) in
      let ids =
        List.mapi
          (fun i c ->
            (i, c, client_exn "submit" (Server.Client.submit c (fast_spec i))))
          clients
      in
      List.iter
        (fun (i, c, id) ->
          let status, result = client_exn "wait" (Server.Client.wait c id) in
          Alcotest.(check string) (Printf.sprintf "job %d done" id) "done"
            status;
          let served =
            match result with
            | Some r -> (
              match Engine.Job.result_of_json r with
              | Ok jr -> jr
              | Error e -> Alcotest.failf "result does not validate: %s" e)
            | None -> Alcotest.failf "wait response for %d lacks a result" id
          in
          let solo = solo_result (fast_spec i) in
          Alcotest.(check bool)
            (Printf.sprintf "job %d hpwl bitwise" id)
            true
            (Int64.bits_of_float served.Engine.Job.hpwl
            = Int64.bits_of_float solo.Engine.Job.hpwl);
          Alcotest.(check int)
            (Printf.sprintf "job %d iterations" id)
            solo.Engine.Job.iterations served.Engine.Job.iterations)
        ids;
      let m = client_exn "metrics" (Server.Client.metrics (List.hd clients)) in
      (match List.assoc_opt "scheduler" m with
      | Some (J.Obj sched_fields) ->
        (match List.assoc_opt "shards" sched_fields with
        | Some (J.Num s) -> Alcotest.(check int) "shards" 2 (int_of_float s)
        | _ -> Alcotest.fail "scheduler field lacks shards");
        (match List.assoc_opt "per_shard" sched_fields with
        | Some (J.Arr rows) ->
          Alcotest.(check int) "per-shard rows" 2 (List.length rows);
          let slices =
            List.fold_left
              (fun acc row ->
                match J.member "slices" row with
                | Some (J.Num v) -> acc + int_of_float v
                | _ -> Alcotest.fail "per-shard row lacks slices")
              0 rows
          in
          Alcotest.(check bool) "workers executed the slices" true (slices > 0)
        | _ -> Alcotest.fail "scheduler field lacks per_shard")
      | _ -> Alcotest.fail "metrics response lacks scheduler");
      client_exn "shutdown" (Server.Client.shutdown (List.hd clients));
      List.iter Server.Client.close clients;
      Alcotest.(check int) "sharded server exit code" 0 (reap pid))

let suite =
  [
    Alcotest.test_case "frame: chunked feeds" `Quick test_frame_chunks;
    Alcotest.test_case "frame: many lines one feed" `Quick
      test_frame_many_lines_one_feed;
    Alcotest.test_case "frame: overflow resync" `Quick test_frame_overflow;
    Alcotest.test_case "frame: reset" `Quick test_frame_reset;
    Alcotest.test_case "address: parse" `Quick test_address_parse;
    Alcotest.test_case "address: roundtrip" `Quick test_address_roundtrip;
    Alcotest.test_case "protocol: v2 golden transcript" `Quick test_golden_v2;
    Alcotest.test_case "protocol: v1 golden transcript" `Quick test_golden_v1;
    Alcotest.test_case "protocol: v3 golden transcript" `Quick test_golden_v3;
    Alcotest.test_case "protocol: v2 submit unchanged" `Quick
      test_golden_v2_submit_unchanged;
    Alcotest.test_case "protocol: codes round-trip" `Quick test_codes_roundtrip;
    QCheck_alcotest.to_alcotest fuzz_serve_responds;
    Alcotest.test_case "socket: 8 clients bitwise-equal to solo" `Quick
      test_eight_clients_bitwise_equal;
    Alcotest.test_case "socket: admission + SIGTERM drain" `Quick
      test_admission_and_sigterm_drain;
    Alcotest.test_case "socket: oversized line survives" `Quick
      test_oversized_line_survives;
    Alcotest.test_case "socket: sharded server bitwise + shard metrics" `Quick
      test_sharded_server_bitwise_and_metrics;
  ]
