(* Job-engine tests: checkpoint fidelity, scheduler semantics, protocol.

   The load-bearing property is bitwise restartability: a job resumed
   from a checkpoint must follow exactly the trajectory the
   uninterrupted run follows — same placement bits, same telemetry
   tail — for both net models and any domain-pool size.  The scheduler
   tests additionally pin the cooperative semantics: interleaving
   preserves solo trajectories, deadlines and cancellation degrade to a
   legal placement instead of raising, and the ECO warm-start path is
   the same computation as calling Kraftwerk.Eco.replace directly. *)

let bits = Int64.bits_of_float

let same_float_array tag a b =
  Alcotest.(check int) (tag ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if bits x <> bits b.(i) then
        Alcotest.failf "%s: element %d differs: %h vs %h" tag i x b.(i))
    a

let same_placement tag (a : Netlist.Placement.t) (b : Netlist.Placement.t) =
  same_float_array (tag ^ ".x") a.Netlist.Placement.x b.Netlist.Placement.x;
  same_float_array (tag ^ ".y") a.Netlist.Placement.y b.Netlist.Placement.y

let ok_or_fail = function Ok v -> v | Error msg -> Alcotest.fail msg

let source ?(seed = 7) () =
  Engine.Source.Profile { name = "fract"; scale = 0.5; seed }

let temp suffix = Filename.temp_file "engine_test" suffix

let read_lines file =
  let ic = open_in file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

(* Deterministic payload of a trace's iteration records: volatile fields
   (timings, pool facts) and cache-provenance fields (a resumed run
   recompiles where the uninterrupted run refilled) stripped. *)
let iteration_payloads file =
  read_lines file
  |> List.filter_map (fun line ->
         match Obs.Json.of_string line with
         | Error e -> Alcotest.failf "unparsable trace line: %s" e
         | Ok v -> (
           match Obs.Json.member "record" v with
           | Some (Obs.Json.Str "iteration") ->
             Some
               (Obs.Json.to_string
                  (Obs.Telemetry.strip_provenance
                     (Obs.Telemetry.strip_volatile v)))
           | _ -> None))

let last k l = List.filteri (fun i _ -> i >= List.length l - k) l

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                          *)

let test_checkpoint_round_trip () =
  let circuit, p0 = ok_or_fail (Engine.Source.load (source ())) in
  let config = Kraftwerk.Config.fast in
  let state = Kraftwerk.Placer.init config circuit p0 in
  ignore (Kraftwerk.Placer.continue_run state ~max_steps:4);
  let cp = Engine.Checkpoint.of_state state in
  let file = temp ".json" in
  Engine.Checkpoint.save file cp;
  let cp' = ok_or_fail (Engine.Checkpoint.load file) in
  Sys.remove file;
  Alcotest.(check int) "version" Engine.Checkpoint.version
    cp'.Engine.Checkpoint.version;
  Alcotest.(check int) "iteration" state.Kraftwerk.Placer.iteration
    cp'.Engine.Checkpoint.iteration;
  same_float_array "x" cp.Engine.Checkpoint.x cp'.Engine.Checkpoint.x;
  same_float_array "y" cp.Engine.Checkpoint.y cp'.Engine.Checkpoint.y;
  same_float_array "ex" cp.Engine.Checkpoint.ex cp'.Engine.Checkpoint.ex;
  same_float_array "ey" cp.Engine.Checkpoint.ey cp'.Engine.Checkpoint.ey;
  same_float_array "net_weights" cp.Engine.Checkpoint.net_weights
    cp'.Engine.Checkpoint.net_weights;
  let restored = ok_or_fail (Engine.Checkpoint.restore cp' config circuit) in
  same_placement "restored placement" state.Kraftwerk.Placer.placement
    restored.Kraftwerk.Placer.placement;
  same_float_array "restored ex" state.Kraftwerk.Placer.ex
    restored.Kraftwerk.Placer.ex;
  same_float_array "restored ey" state.Kraftwerk.Placer.ey
    restored.Kraftwerk.Placer.ey

let test_checkpoint_digest_guards () =
  let circuit, p0 = ok_or_fail (Engine.Source.load (source ())) in
  let config = Kraftwerk.Config.fast in
  let state = Kraftwerk.Placer.init config circuit p0 in
  ignore (Kraftwerk.Placer.continue_run state ~max_steps:2);
  let cp = Engine.Checkpoint.of_state state in
  (* A different trajectory-relevant config field must be rejected... *)
  let bad = { config with Kraftwerk.Config.k_param = 0.123 } in
  (match Engine.Checkpoint.restore cp bad circuit with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "restore accepted a different config");
  (* ...a different circuit must be rejected... *)
  let rng = Numeric.Rng.create 5 in
  let rewired = Kraftwerk.Eco.rewire circuit rng ~fraction:0.5 in
  (match Engine.Checkpoint.restore cp config rewired with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "restore accepted a different circuit");
  (* ...but the pool size is not part of the semantics (results are
     bitwise domain-count-independent). *)
  let pool = { config with Kraftwerk.Config.domains = Some 2 } in
  ignore (ok_or_fail (Engine.Checkpoint.restore cp pool circuit))

(* The core property (§2.2: the accumulated ~e vectors make mid-run
   state restartable), for both net models and pools {1, 2, 4}: cutting
   a run at a checkpoint and restoring yields bitwise the placement and
   forces of the uninterrupted run. *)
let test_resume_bitwise_models_pools () =
  let circuit, p0 = ok_or_fail (Engine.Source.load (source ())) in
  let total = 10 and cut = 4 in
  List.iter
    (fun model ->
      List.iter
        (fun pool ->
          let tag =
            Printf.sprintf "%s/pool%d"
              (match model with
              | Qp.System.Clique -> "clique"
              | Qp.System.Bound2bound -> "b2b")
              pool
          in
          let config =
            {
              Kraftwerk.Config.fast with
              Kraftwerk.Config.net_model = model;
              domains = Some pool;
            }
          in
          let reference = Kraftwerk.Placer.init config circuit p0 in
          ignore (Kraftwerk.Placer.continue_run reference ~max_steps:total);
          let first = Kraftwerk.Placer.init config circuit p0 in
          ignore (Kraftwerk.Placer.continue_run first ~max_steps:cut);
          let file = temp ".json" in
          Engine.Checkpoint.save file (Engine.Checkpoint.of_state first);
          let cp = ok_or_fail (Engine.Checkpoint.load file) in
          Sys.remove file;
          let resumed = ok_or_fail (Engine.Checkpoint.restore cp config circuit) in
          ignore
            (Kraftwerk.Placer.continue_run resumed ~max_steps:(total - cut));
          Alcotest.(check int)
            (tag ^ ": iteration")
            reference.Kraftwerk.Placer.iteration
            resumed.Kraftwerk.Placer.iteration;
          same_placement
            (tag ^ ": placement")
            reference.Kraftwerk.Placer.placement
            resumed.Kraftwerk.Placer.placement;
          same_float_array (tag ^ ": ex") reference.Kraftwerk.Placer.ex
            resumed.Kraftwerk.Placer.ex;
          same_float_array (tag ^ ": ey") reference.Kraftwerk.Placer.ey
            resumed.Kraftwerk.Placer.ey)
        [ 1; 2; 4 ])
    [ Qp.System.Clique; Qp.System.Bound2bound ]

let same_controller tag (a : Kraftwerk.Controller.t)
    (b : Kraftwerk.Controller.t) =
  let fbit name x y =
    if bits x <> bits y then
      Alcotest.failf "%s: controller %s differs: %h vs %h" tag name x y
  in
  fbit "penalty" a.Kraftwerk.Controller.penalty b.Kraftwerk.Controller.penalty;
  fbit "lb" a.Kraftwerk.Controller.lb b.Kraftwerk.Controller.lb;
  fbit "ub" a.Kraftwerk.Controller.ub b.Kraftwerk.Controller.ub;
  fbit "ub_min" a.Kraftwerk.Controller.ub_min b.Kraftwerk.Controller.ub_min;
  fbit "gap" a.Kraftwerk.Controller.gap b.Kraftwerk.Controller.gap;
  fbit "gap_min" a.Kraftwerk.Controller.gap_min b.Kraftwerk.Controller.gap_min;
  Alcotest.(check int)
    (tag ^ ": since_legalize")
    a.Kraftwerk.Controller.since_legalize
    b.Kraftwerk.Controller.since_legalize;
  Alcotest.(check int)
    (tag ^ ": ub_evals")
    a.Kraftwerk.Controller.ub_evals b.Kraftwerk.Controller.ub_evals;
  Alcotest.(check int)
    (tag ^ ": stall")
    a.Kraftwerk.Controller.stall b.Kraftwerk.Controller.stall;
  Alcotest.(check bool) (tag ^ ": stop_reason") true
    (a.Kraftwerk.Controller.stop_reason = b.Kraftwerk.Controller.stop_reason)

(* Same cut-and-restore property with the controller actively steering:
   probes every 3 iterations put LB/UB history on both sides of the cut,
   and the penalty ramp is caught mid-flight (past its initial value,
   below its cap) so a restore that recomputed the schedule instead of
   restoring it verbatim would diverge.  The stop criteria are disabled
   so the schedule itself is what's under test. *)
let test_resume_bitwise_controller_active () =
  let circuit, p0 = ok_or_fail (Engine.Source.load (source ())) in
  let total = 12 and cut = 5 in
  List.iter
    (fun pool ->
      let tag = Printf.sprintf "controller/pool%d" pool in
      let config =
        {
          Kraftwerk.Config.fast with
          Kraftwerk.Config.domains = Some pool;
          legalize_every = 3;
          penalty_initial = 0.9;
          penalty_update = 1.05;
          penalty_max = 1.2;
          stop_gap = 0.;
          stop_stall = 0;
        }
      in
      let reference = Kraftwerk.Placer.init config circuit p0 in
      ignore (Kraftwerk.Placer.continue_run reference ~max_steps:total);
      let first = Kraftwerk.Placer.init config circuit p0 in
      ignore (Kraftwerk.Placer.continue_run first ~max_steps:cut);
      (* The cut must land mid-schedule: envelope history already
         recorded, penalty strictly between its initial value and cap. *)
      let fc = first.Kraftwerk.Placer.controller in
      Alcotest.(check bool)
        (tag ^ ": probe taken before the cut")
        true
        (fc.Kraftwerk.Controller.ub_evals >= 1);
      Alcotest.(check bool)
        (tag ^ ": penalty mid-ramp at the cut")
        true
        (fc.Kraftwerk.Controller.penalty > 0.9
        && fc.Kraftwerk.Controller.penalty < 1.2);
      let file = temp ".json" in
      Engine.Checkpoint.save file (Engine.Checkpoint.of_state first);
      let cp = ok_or_fail (Engine.Checkpoint.load file) in
      Sys.remove file;
      let resumed = ok_or_fail (Engine.Checkpoint.restore cp config circuit) in
      same_controller (tag ^ ": at the cut") fc
        resumed.Kraftwerk.Placer.controller;
      ignore (Kraftwerk.Placer.continue_run resumed ~max_steps:(total - cut));
      Alcotest.(check int)
        (tag ^ ": iteration")
        reference.Kraftwerk.Placer.iteration
        resumed.Kraftwerk.Placer.iteration;
      same_placement
        (tag ^ ": placement")
        reference.Kraftwerk.Placer.placement
        resumed.Kraftwerk.Placer.placement;
      same_float_array (tag ^ ": ex") reference.Kraftwerk.Placer.ex
        resumed.Kraftwerk.Placer.ex;
      same_float_array (tag ^ ": ey") reference.Kraftwerk.Placer.ey
        resumed.Kraftwerk.Placer.ey;
      Alcotest.(check bool)
        (tag ^ ": envelope probed after the cut")
        true
        (reference.Kraftwerk.Placer.controller.Kraftwerk.Controller.ub_evals
        >= 2);
      same_controller (tag ^ ": at the end")
        reference.Kraftwerk.Placer.controller
        resumed.Kraftwerk.Placer.controller)
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)

let submit_and_drain sched spec =
  let id = Engine.Scheduler.submit sched spec in
  Engine.Scheduler.drain sched;
  id

let job_result sched id =
  match Engine.Scheduler.result sched id with
  | Some r -> r
  | None -> Alcotest.failf "job %d has no result" id

let job_placement sched id =
  match Engine.Scheduler.placement sched id with
  | Some p -> p
  | None -> Alcotest.failf "job %d has no placement" id

(* Same property through the engine: a job finished at its checkpoint,
   resumed, must report bitwise what the uninterrupted job reports —
   including the telemetry tail of the trace. *)
let test_engine_resume_matches_uninterrupted () =
  let ck = temp ".json" and tb = temp ".jsonl" and tc = temp ".jsonl" in
  let src = source () in
  let sched = Engine.Scheduler.create () in
  let a =
    submit_and_drain sched
      (Engine.Job.spec ~source:src ~mode:Engine.Job.Fast ~max_steps:5
         ~checkpoint:ck ())
  in
  Alcotest.(check string) "prefix job done" "done"
    (Engine.Job.status_to_string (job_result sched a).Engine.Job.status);
  let b =
    submit_and_drain sched
      (Engine.Job.spec ~source:src ~mode:Engine.Job.Fast ~max_steps:10
         ~start:(Engine.Job.Resume ck) ~trace:tb ())
  in
  let c =
    submit_and_drain sched
      (Engine.Job.spec ~source:src ~mode:Engine.Job.Fast ~max_steps:10
         ~trace:tc ())
  in
  let rb = job_result sched b and rc = job_result sched c in
  Alcotest.(check int) "same total iterations" rc.Engine.Job.iterations
    rb.Engine.Job.iterations;
  same_placement "global placement" (job_placement sched c)
    (job_placement sched b);
  Alcotest.(check bool) "legalised hpwl bitwise equal" true
    (bits rb.Engine.Job.hpwl = bits rc.Engine.Job.hpwl);
  Alcotest.(check bool) "improvement deltas bitwise equal" true
    (bits rb.Engine.Job.improve_delta = bits rc.Engine.Job.improve_delta
    && bits rb.Engine.Job.domino_delta = bits rc.Engine.Job.domino_delta
    && rb.Engine.Job.improve_moves = rc.Engine.Job.improve_moves
    && rb.Engine.Job.domino_moves = rc.Engine.Job.domino_moves);
  (* The resumed trace is exactly the tail of the uninterrupted one. *)
  let ib = iteration_payloads tb and ic = iteration_payloads tc in
  Alcotest.(check bool) "resumed trace is shorter" true
    (List.length ib < List.length ic);
  Alcotest.(check (list string)) "telemetry tail matches"
    (last (List.length ib) ic)
    ib;
  List.iter Sys.remove [ ck; tb; tc ]

(* Timing-driven jobs checkpoint their per-net criticalities too. *)
let test_engine_resume_timing_driven () =
  let ck = temp ".json" in
  let src = source ~seed:11 () in
  let sched = Engine.Scheduler.create () in
  let _ =
    submit_and_drain sched
      (Engine.Job.spec ~source:src ~mode:Engine.Job.Fast ~timing:true
         ~max_steps:4 ~checkpoint:ck ())
  in
  let b =
    submit_and_drain sched
      (Engine.Job.spec ~source:src ~mode:Engine.Job.Fast ~timing:true
         ~max_steps:8 ~start:(Engine.Job.Resume ck) ())
  in
  let c =
    submit_and_drain sched
      (Engine.Job.spec ~source:src ~mode:Engine.Job.Fast ~timing:true
         ~max_steps:8 ())
  in
  same_placement "timing-driven placement" (job_placement sched c)
    (job_placement sched b);
  Sys.remove ck

let test_deadline_degrades_to_legal () =
  let circuit, _ = ok_or_fail (Engine.Source.load (source ())) in
  let sched = Engine.Scheduler.create () in
  let id =
    submit_and_drain sched
      (Engine.Job.spec ~source:(source ()) ~mode:Engine.Job.Fast ~deadline:0.0
         ())
  in
  let r = job_result sched id in
  Alcotest.(check string) "status cancelled" "cancelled"
    (Engine.Job.status_to_string r.Engine.Job.status);
  Alcotest.(check bool) "deadline expired" true r.Engine.Job.deadline_expired;
  Alcotest.(check bool) "reported legal" true r.Engine.Job.legal;
  match Engine.Scheduler.legalized sched id with
  | None -> Alcotest.fail "no legalised placement"
  | Some lp ->
    Alcotest.(check bool) "passes Legalize.Check" true
      (Legalize.Check.is_legal circuit lp)

(* Mid-run cancellation: best-so-far legal placement, a final checkpoint
   when configured, and the checkpoint resumes to the uninterrupted
   result. *)
let test_cancel_checkpoint_resume () =
  let ck = temp ".json" in
  let circuit, _ = ok_or_fail (Engine.Source.load (source ())) in
  let sched = Engine.Scheduler.create () in
  let a =
    Engine.Scheduler.submit sched
      (Engine.Job.spec ~source:(source ()) ~mode:Engine.Job.Fast ~max_steps:10
         ~checkpoint:ck ~checkpoint_every:100 ())
  in
  for _ = 1 to 6 do
    ignore (Engine.Scheduler.step sched)
  done;
  Alcotest.(check bool) "cancel accepted" true (Engine.Scheduler.cancel sched a);
  Engine.Scheduler.drain sched;
  let ra = job_result sched a in
  Alcotest.(check string) "status cancelled" "cancelled"
    (Engine.Job.status_to_string ra.Engine.Job.status);
  Alcotest.(check bool) "not via deadline" false ra.Engine.Job.deadline_expired;
  Alcotest.(check bool) "best-so-far is legal" true ra.Engine.Job.legal;
  (match Engine.Scheduler.legalized sched a with
  | Some lp ->
    Alcotest.(check bool) "passes Legalize.Check" true
      (Legalize.Check.is_legal circuit lp)
  | None -> Alcotest.fail "no legalised placement");
  Alcotest.(check (option string)) "final checkpoint written" (Some ck)
    ra.Engine.Job.checkpoint_written;
  let b =
    submit_and_drain sched
      (Engine.Job.spec ~source:(source ()) ~mode:Engine.Job.Fast ~max_steps:10
         ~start:(Engine.Job.Resume ck) ())
  in
  let c =
    submit_and_drain sched
      (Engine.Job.spec ~source:(source ()) ~mode:Engine.Job.Fast ~max_steps:10
         ())
  in
  same_placement "resumed-after-cancel placement" (job_placement sched c)
    (job_placement sched b);
  Sys.remove ck

(* ECO through the engine: a Warm start on an edited circuit is the same
   computation as Kraftwerk.Eco.replace on the base placement. *)
let test_eco_job_matches_direct_replace () =
  let src = source ~seed:3 () in
  let circuit, p0 = ok_or_fail (Engine.Source.load src) in
  let config = Engine.Job.config_of_mode Engine.Job.Fast in
  let base, _ = Kraftwerk.Placer.run config circuit p0 in
  let ck = temp ".json" in
  Engine.Checkpoint.save ck (Engine.Checkpoint.of_state base);
  let rng = Numeric.Rng.create 99 in
  let rewired = Kraftwerk.Eco.rewire circuit rng ~fraction:0.2 in
  let ckt = temp ".ckt" in
  Netlist.Io.save_circuit ckt rewired;
  (* Both sides use the circuit as reloaded from disk, like a serve
     client would submit it. *)
  let c2, _ = ok_or_fail (Engine.Source.load (Engine.Source.File ckt)) in
  let direct, _ =
    Kraftwerk.Eco.replace config c2 base.Kraftwerk.Placer.placement
      ~max_steps:6
  in
  let sched = Engine.Scheduler.create () in
  let id =
    submit_and_drain sched
      (Engine.Job.spec ~source:(Engine.Source.File ckt) ~mode:Engine.Job.Fast
         ~start:(Engine.Job.Warm ck) ~max_steps:6 ())
  in
  let r = job_result sched id in
  Alcotest.(check string) "eco job done" "done"
    (Engine.Job.status_to_string r.Engine.Job.status);
  same_placement "eco placement" direct (job_placement sched id);
  List.iter Sys.remove [ ck; ckt ]

(* Interleaving K jobs must not perturb any of their trajectories. *)
let test_concurrent_interleaving_preserves_trajectories () =
  let spec seed =
    Engine.Job.spec ~source:(source ~seed ()) ~mode:Engine.Job.Fast
      ~max_steps:8 ()
  in
  let seeds = [ 1; 2; 3 ] in
  let solo =
    List.map
      (fun seed ->
        let sched = Engine.Scheduler.create () in
        let id = submit_and_drain sched (spec seed) in
        job_placement sched id)
      seeds
  in
  let events = ref [] in
  let sched =
    Engine.Scheduler.create ~concurrency:3 ~domains:4
      ~on_event:(fun e -> events := e :: !events)
      ()
  in
  let ids = List.map (fun seed -> Engine.Scheduler.submit sched (spec seed)) seeds in
  Engine.Scheduler.drain sched;
  (* All three genuinely ran interleaved: every start precedes the first
     finish. *)
  let started_before_finish =
    let rec count acc = function
      | Engine.Scheduler.Finished _ :: _ -> acc
      | Engine.Scheduler.Started _ :: rest -> count (acc + 1) rest
      | _ :: rest -> count acc rest
      | [] -> acc
    in
    count 0 (List.rev !events)
  in
  Alcotest.(check int) "all jobs started before any finished" 3
    started_before_finish;
  List.iteri
    (fun i (seed, id) ->
      ignore i;
      same_placement
        (Printf.sprintf "seed %d" seed)
        (List.nth solo (i + 0))
        (job_placement sched id))
    (List.combine seeds ids)

(* ------------------------------------------------------------------ *)
(* Sharded scheduler                                                    *)

(* The sharding contract: for any shard count, with stealing actually
   exercised, every job's result is bitwise the solo run's — placement,
   legalised metrics and telemetry trace alike.  Load is deliberately
   imbalanced (the two shards holding only short jobs go idle early and
   must steal the long jobs queued on shards 0/1), so at shards ≥ 2 the
   steal counters are checked to be live, not just tolerated. *)
let test_sharded_matches_solo () =
  let steps = [| 12; 12; 2; 2; 12; 12 |] in
  let spec ?trace seed =
    Engine.Job.spec
      ~source:(source ~seed ())
      ~mode:Engine.Job.Fast
      ~max_steps:steps.(seed - 1)
      ?trace ()
  in
  let seeds = [ 1; 2; 3; 4; 5; 6 ] in
  let solo_traces = List.map (fun _ -> temp ".jsonl") seeds in
  let solo =
    List.map2
      (fun seed trace ->
        let sched = Engine.Scheduler.create () in
        let id = submit_and_drain sched (spec ~trace seed) in
        (job_placement sched id, job_result sched id))
      seeds solo_traces
  in
  List.iter
    (fun shards ->
      let tag fmt = Printf.ksprintf (fun s -> s) fmt in
      let traces = List.map (fun _ -> temp ".jsonl") seeds in
      let events = ref [] in
      let sched =
        Engine.Scheduler.create ~concurrency:6 ~domains:shards ~shards
          ~on_event:(fun e -> events := e :: !events)
          ()
      in
      let ids =
        List.map2
          (fun seed trace -> Engine.Scheduler.submit sched (spec ~trace seed))
          seeds traces
      in
      Engine.Scheduler.drain sched;
      let metrics = Engine.Scheduler.shard_metrics sched in
      Engine.Scheduler.stop sched;
      Alcotest.(check int)
        (tag "shards=%d: metric per shard" shards)
        shards (List.length metrics);
      (* Lifecycle events arrive on the coordinator, in per-job order. *)
      let evs = List.rev !events in
      List.iter
        (fun id ->
          let pos p =
            let rec find i = function
              | [] -> Alcotest.failf "shards=%d: job %d lost an event" shards id
              | e :: rest -> if p e then i else find (i + 1) rest
            in
            find 0 evs
          in
          let sub = pos (fun e -> e = Engine.Scheduler.Submitted id) in
          let st = pos (fun e -> e = Engine.Scheduler.Started id) in
          let fin =
            pos (function
              | Engine.Scheduler.Finished (i, _) -> i = id
              | _ -> false)
          in
          Alcotest.(check bool)
            (tag "shards=%d: job %d event order" shards id)
            true
            (sub < st && st < fin))
        ids;
      List.iteri
        (fun i (seed, id) ->
          let solo_p, solo_r = List.nth solo i in
          let r = job_result sched id in
          same_placement
            (tag "shards=%d seed=%d: placement" shards seed)
            solo_p (job_placement sched id);
          Alcotest.(check bool)
            (tag "shards=%d seed=%d: legalised metrics bitwise" shards seed)
            true
            (bits r.Engine.Job.hpwl = bits solo_r.Engine.Job.hpwl
            && bits r.Engine.Job.overlap = bits solo_r.Engine.Job.overlap
            && r.Engine.Job.iterations = solo_r.Engine.Job.iterations);
          Alcotest.(check (list string))
            (tag "shards=%d seed=%d: telemetry trace" shards seed)
            (iteration_payloads (List.nth solo_traces i))
            (iteration_payloads (List.nth traces i)))
        (List.combine seeds ids);
      List.iter Sys.remove traces)
    [ 1; 2; 4 ];
  List.iter Sys.remove solo_traces

(* Stealing, forced structurally: jobs 1 and 3 are long and both home on
   shard 0 ((id-1) mod 2), job 2 is a one-step throwaway freeing shard
   1's worker almost immediately.  From then on shard 0's queue holds a
   runnable job at essentially all times (two live jobs, one executor),
   so the idle worker's first wake-up scan steals a slice.  The stolen
   slices must not perturb either trajectory. *)
let test_forced_stealing_bitwise () =
  let long seed =
    Engine.Job.spec ~source:(source ~seed ()) ~mode:Engine.Job.Fast
      ~max_steps:12 ()
  in
  let solo =
    List.map
      (fun seed ->
        let sched = Engine.Scheduler.create () in
        let id = submit_and_drain sched (long seed) in
        job_placement sched id)
      [ 21; 22 ]
  in
  let sched = Engine.Scheduler.create ~concurrency:3 ~domains:2 ~shards:2 () in
  let a = Engine.Scheduler.submit sched (long 21) in
  let _ =
    Engine.Scheduler.submit sched
      (Engine.Job.spec ~source:(source ~seed:23 ()) ~mode:Engine.Job.Fast
         ~max_steps:1 ())
  in
  let b = Engine.Scheduler.submit sched (long 22) in
  Engine.Scheduler.drain sched;
  let metrics = Engine.Scheduler.shard_metrics sched in
  Engine.Scheduler.stop sched;
  let total_steals =
    List.fold_left (fun acc m -> acc + m.Engine.Scheduler.m_steals) 0 metrics
  in
  Alcotest.(check bool) "stealing actually happened" true (total_steals > 0);
  same_placement "stolen job a" (List.nth solo 0) (job_placement sched a);
  same_placement "stolen job b" (List.nth solo 1) (job_placement sched b)

(* True when some iteration record in [file] carries a UB probe. *)
let trace_has_probe file =
  List.exists
    (fun line ->
      match Obs.Json.of_string line with
      | Error _ -> false
      | Ok v -> (
        match (Obs.Json.member "record" v, Obs.Json.member "ub_hpwl" v) with
        | Some (Obs.Json.Str "iteration"), Some (Obs.Json.Num _) -> true
        | _ -> false))
    (read_lines file)

(* Kill-and-resume with an effort preset steering the run, through the
   sharded scheduler: an effort-1 job cut at its checkpoint and resumed
   must replay bitwise on 1, 2 and 4 shards — placement, legalised
   metrics and the LB/UB telemetry tail alike.  The cut at 7 straddles
   the effort-1 probe cadence (every 5 iterations), so the resumed
   trace must carry live envelope probes of its own. *)
let test_sharded_resume_with_effort () =
  let src = source () in
  let spec ?start ?checkpoint ?trace ~max_steps () =
    Engine.Job.spec ~source:src ~mode:Engine.Job.Fast ~effort:1 ~max_steps
      ?start ?checkpoint ?trace ()
  in
  let t0 = temp ".jsonl" in
  let solo_sched = Engine.Scheduler.create () in
  let s = submit_and_drain solo_sched (spec ~max_steps:14 ~trace:t0 ()) in
  let solo_p = job_placement solo_sched s
  and solo_r = job_result solo_sched s in
  let solo_payloads = iteration_payloads t0 in
  List.iter
    (fun shards ->
      let tag fmt = Printf.ksprintf (fun s -> s) fmt in
      let ck = temp ".json" and tr = temp ".jsonl" in
      let sched =
        Engine.Scheduler.create ~concurrency:4 ~domains:shards ~shards ()
      in
      let a = submit_and_drain sched (spec ~max_steps:7 ~checkpoint:ck ()) in
      Alcotest.(check string)
        (tag "shards=%d: prefix job done" shards)
        "done"
        (Engine.Job.status_to_string (job_result sched a).Engine.Job.status);
      let b =
        submit_and_drain sched
          (spec ~max_steps:14 ~start:(Engine.Job.Resume ck) ~trace:tr ())
      in
      let rb = job_result sched b in
      Engine.Scheduler.stop sched;
      Alcotest.(check int)
        (tag "shards=%d: same total iterations" shards)
        solo_r.Engine.Job.iterations rb.Engine.Job.iterations;
      same_placement
        (tag "shards=%d: global placement" shards)
        solo_p (job_placement sched b);
      Alcotest.(check bool)
        (tag "shards=%d: legalised hpwl bitwise" shards)
        true
        (bits rb.Engine.Job.hpwl = bits solo_r.Engine.Job.hpwl);
      let ib = iteration_payloads tr in
      Alcotest.(check bool)
        (tag "shards=%d: resumed trace is shorter" shards)
        true
        (List.length ib < List.length solo_payloads);
      Alcotest.(check (list string))
        (tag "shards=%d: LB/UB telemetry tail matches" shards)
        (last (List.length ib) solo_payloads)
        ib;
      Alcotest.(check bool)
        (tag "shards=%d: resumed tail carries a UB probe" shards)
        true (trace_has_probe tr);
      List.iter Sys.remove [ ck; tr ])
    [ 1; 2; 4 ];
  Sys.remove t0

(* Cancellation and deadlines keep their degraded-but-legal semantics
   when slices run on worker domains. *)
let test_sharded_cancel_deadline_legal () =
  let circuit, _ = ok_or_fail (Engine.Source.load (source ())) in
  let circuit5, _ = ok_or_fail (Engine.Source.load (source ~seed:5 ())) in
  let sched = Engine.Scheduler.create ~concurrency:2 ~domains:2 ~shards:2 () in
  let a =
    Engine.Scheduler.submit sched
      (Engine.Job.spec ~source:(source ()) ~mode:Engine.Job.Fast ~max_steps:500
         ())
  in
  let d =
    Engine.Scheduler.submit sched
      (Engine.Job.spec ~source:(source ~seed:5 ()) ~mode:Engine.Job.Fast
         ~deadline:0.0 ())
  in
  (* Let the long job make real progress before cancelling it. *)
  let slices () =
    List.fold_left
      (fun acc m -> acc + m.Engine.Scheduler.m_slices)
      0
      (Engine.Scheduler.shard_metrics sched)
  in
  while slices () < 4 && Engine.Scheduler.busy sched do
    ignore (Engine.Scheduler.step sched)
  done;
  Alcotest.(check bool) "cancel accepted" true (Engine.Scheduler.cancel sched a);
  Engine.Scheduler.drain sched;
  Engine.Scheduler.stop sched;
  let ra = job_result sched a and rd = job_result sched d in
  Alcotest.(check string) "cancelled status" "cancelled"
    (Engine.Job.status_to_string ra.Engine.Job.status);
  Alcotest.(check bool) "cancel not via deadline" false
    ra.Engine.Job.deadline_expired;
  Alcotest.(check string) "deadline status" "cancelled"
    (Engine.Job.status_to_string rd.Engine.Job.status);
  Alcotest.(check bool) "deadline expired" true rd.Engine.Job.deadline_expired;
  List.iter
    (fun (tag, c, id, r) ->
      Alcotest.(check bool) (tag ^ " reported legal") true r.Engine.Job.legal;
      match Engine.Scheduler.legalized sched id with
      | Some lp ->
        Alcotest.(check bool)
          (tag ^ " passes Legalize.Check")
          true
          (Legalize.Check.is_legal c lp)
      | None -> Alcotest.failf "%s: no legalised placement" tag)
    [ ("cancelled", circuit, a, ra); ("deadline", circuit5, d, rd) ]

(* ------------------------------------------------------------------ *)
(* Multilevel flow through the engine                                  *)

(* fract's coarse circuit is so small the §4.2 density criterion is
   already satisfied at init, which would make the coarse stage a no-op;
   primary1 at this scale gives every stage real work (the coarse stage
   runs ~20 transformations before descending). *)
let ml_source () = Engine.Source.Profile { name = "primary1"; scale = 0.4; seed = 7 }

let fixed_positions_of (circuit : Netlist.Circuit.t) (p : Netlist.Placement.t) =
  Array.to_list circuit.Netlist.Circuit.cells
  |> List.filter_map (fun (cl : Netlist.Cell.t) ->
         if cl.Netlist.Cell.fixed then
           let id = cl.Netlist.Cell.id in
           Some (id, (p.Netlist.Placement.x.(id), p.Netlist.Placement.y.(id)))
         else None)

(* A multilevel job through the scheduler is the same computation as
   driving the V-cycle directly. *)
let test_multilevel_job_matches_direct () =
  let src = ml_source () in
  let circuit, p0 = ok_or_fail (Engine.Source.load src) in
  let config = Engine.Job.config_of_mode Engine.Job.Fast in
  let direct =
    Kraftwerk.Cluster.place_multilevel config circuit
      ~fixed_positions:(fixed_positions_of circuit p0)
      (Netlist.Placement.copy p0)
  in
  let sched = Engine.Scheduler.create () in
  let id =
    submit_and_drain sched
      (Engine.Job.spec ~source:src ~mode:Engine.Job.Fast
         ~flow:Engine.Job.Multilevel ())
  in
  let r = job_result sched id in
  Alcotest.(check string) "multilevel job done" "done"
    (Engine.Job.status_to_string r.Engine.Job.status);
  Alcotest.(check bool) "took iterations" true (r.Engine.Job.iterations > 0);
  same_placement "multilevel global placement" direct (job_placement sched id)

(* Multilevel checkpoints carry the stage coordinates and only restore
   through the multilevel path. *)
let test_multilevel_checkpoint_guards () =
  let src = ml_source () in
  let circuit, p0 = ok_or_fail (Engine.Source.load src) in
  let config = Engine.Job.config_of_mode Engine.Job.Fast in
  let fixed = fixed_positions_of circuit p0 in
  let run =
    Kraftwerk.Cluster.start config circuit ~fixed_positions:fixed
      (Netlist.Placement.copy p0)
  in
  for _ = 1 to 5 do
    ignore (Kraftwerk.Cluster.step run)
  done;
  let cp = Engine.Checkpoint.of_run run in
  Alcotest.(check bool) "mid-level cut" true
    (cp.Engine.Checkpoint.ml_level > 0 && cp.Engine.Checkpoint.ml_levels > 1);
  (* The flat restore path must refuse a coarse-stage checkpoint... *)
  (match Engine.Checkpoint.restore cp config circuit with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "flat restore accepted a multilevel checkpoint");
  (* ...while the multilevel path rebuilds the very same stage. *)
  let file = temp ".json" in
  Engine.Checkpoint.save file cp;
  let cp' = ok_or_fail (Engine.Checkpoint.load file) in
  Sys.remove file;
  let resumed =
    ok_or_fail
      (Engine.Checkpoint.restore_multilevel cp' config circuit
         ~fixed_positions:fixed)
  in
  Alcotest.(check int) "same level"
    (Kraftwerk.Cluster.current_level run)
    (Kraftwerk.Cluster.current_level resumed);
  same_placement "same stage placement"
    (Kraftwerk.Cluster.current_state run).Kraftwerk.Placer.placement
    (Kraftwerk.Cluster.current_state resumed).Kraftwerk.Placer.placement;
  (* Continuing both to completion stays bitwise-identical. *)
  while Kraftwerk.Cluster.step run do
    ()
  done;
  while Kraftwerk.Cluster.step resumed do
    ()
  done;
  same_placement "continued to completion"
    (Kraftwerk.Cluster.finish run)
    (Kraftwerk.Cluster.finish resumed)

(* The headline restartability property, multilevel edition: a V-cycle
   job cut at a checkpoint — first mid-coarsest-stage, then mid-refine —
   and resumed must land bitwise on the uninterrupted job's placement,
   on 1, 2 and 4 shards. *)
let test_multilevel_resume_bitwise_shards () =
  let src = ml_source () in
  let mspec ?start ?checkpoint ?max_steps () =
    Engine.Job.spec ~source:src ~mode:Engine.Job.Fast
      ~flow:Engine.Job.Multilevel ?start ?checkpoint ?max_steps ()
  in
  let solo_sched = Engine.Scheduler.create () in
  let s = submit_and_drain solo_sched (mspec ()) in
  let solo_p = job_placement solo_sched s in
  let solo_r = job_result solo_sched s in
  Alcotest.(check bool) "solo ran long enough to cut twice" true
    (solo_r.Engine.Job.iterations > 10);
  List.iter
    (fun shards ->
      let tag fmt = Printf.ksprintf (fun s -> s) fmt in
      List.iter
        (fun (cut_name, cut) ->
          let ck = temp ".json" in
          let sched =
            Engine.Scheduler.create ~concurrency:4 ~domains:shards ~shards ()
          in
          let a = submit_and_drain sched (mspec ~checkpoint:ck ~max_steps:cut ()) in
          Alcotest.(check string)
            (tag "shards=%d %s: prefix done" shards cut_name)
            "done"
            (Engine.Job.status_to_string (job_result sched a).Engine.Job.status);
          let cp = ok_or_fail (Engine.Checkpoint.load ck) in
          Alcotest.(check bool)
            (tag "shards=%d %s: checkpoint is multilevel" shards cut_name)
            true
            (cp.Engine.Checkpoint.ml_levels > 1);
          let b = submit_and_drain sched (mspec ~start:(Engine.Job.Resume ck) ()) in
          let rb = job_result sched b in
          Engine.Scheduler.stop sched;
          Alcotest.(check string)
            (tag "shards=%d %s: resumed done" shards cut_name)
            "done"
            (Engine.Job.status_to_string rb.Engine.Job.status);
          same_placement
            (tag "shards=%d %s: placement" shards cut_name)
            solo_p (job_placement sched b);
          Alcotest.(check bool)
            (tag "shards=%d %s: legalised hpwl bitwise" shards cut_name)
            true
            (bits rb.Engine.Job.hpwl = bits solo_r.Engine.Job.hpwl);
          Sys.remove ck)
        [
          ("coarse cut", 5);
          ("refine cut", solo_r.Engine.Job.iterations - 3);
        ])
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Routability loop through the engine                                 *)

(* The routability loop's persistent congestion-target map is job state:
   a routability job cut mid-loop and resumed must land bitwise on the
   uninterrupted trajectory — placement, legalised HPWL and routed
   overflow — on 1, 2 and 4 shards. *)
let test_congestion_resume_bitwise_shards () =
  let src = source ~seed:3 () in
  let obj =
    Engine.Objective.make ~goal:Engine.Objective.Routability
      ~mode:Engine.Objective.Fast ~congest_every:2 ()
  in
  let cspec ?start ?checkpoint ?max_steps () =
    Engine.Job.spec ~source:src ~objective:obj ?start ?checkpoint ?max_steps ()
  in
  let solo = Engine.Scheduler.create () in
  let s = submit_and_drain solo (cspec ~max_steps:12 ()) in
  let solo_p = job_placement solo s in
  let solo_r = job_result solo s in
  Alcotest.(check string) "solo done" "done"
    (Engine.Job.status_to_string solo_r.Engine.Job.status);
  Alcotest.(check bool) "solo routed overflow measured" true
    (solo_r.Engine.Job.routed_overflow <> None);
  List.iter
    (fun shards ->
      let tag fmt = Printf.ksprintf (fun s -> s) fmt in
      let ck = temp ".json" in
      let sched =
        Engine.Scheduler.create ~concurrency:4 ~domains:shards ~shards ()
      in
      let a = submit_and_drain sched (cspec ~checkpoint:ck ~max_steps:5 ()) in
      Alcotest.(check string)
        (tag "shards=%d: prefix done" shards)
        "done"
        (Engine.Job.status_to_string (job_result sched a).Engine.Job.status);
      (* The cut falls after a congestion refresh: the checkpoint must
         carry the accumulated target map verbatim. *)
      let cp = ok_or_fail (Engine.Checkpoint.load ck) in
      (match cp.Engine.Checkpoint.route_target with
      | Some t ->
        Alcotest.(check bool)
          (tag "shards=%d: target map saved" shards)
          true
          (Array.length t > 0)
      | None ->
        Alcotest.failf "shards=%d: checkpoint without congestion state" shards);
      let b =
        submit_and_drain sched
          (cspec ~start:(Engine.Job.Resume ck) ~max_steps:12 ())
      in
      let rb = job_result sched b in
      Engine.Scheduler.stop sched;
      same_placement (tag "shards=%d: placement" shards) solo_p
        (job_placement sched b);
      Alcotest.(check bool)
        (tag "shards=%d: legalised hpwl bitwise" shards)
        true
        (bits rb.Engine.Job.hpwl = bits solo_r.Engine.Job.hpwl);
      (Alcotest.(check bool) (tag "shards=%d: routed overflow bitwise" shards))
        true
        (match (rb.Engine.Job.routed_overflow, solo_r.Engine.Job.routed_overflow) with
        | Some x, Some y -> bits x = bits y
        | None, None -> true
        | _ -> false);
      Sys.remove ck)
    [ 1; 2; 4 ]

let ok_or_fail_route = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Route.Grid_spec.error_message e)

(* At equal effort, asking for routability must actually buy routability:
   on primary1 the routed overflow of the routability objective stays
   strictly below the wirelength objective's. *)
let test_routability_reduces_routed_overflow () =
  let src = Engine.Source.Profile { name = "primary1"; scale = 1.0; seed = 7 } in
  let run goal =
    let sched = Engine.Scheduler.create () in
    let id =
      submit_and_drain sched
        (Engine.Job.spec ~source:src ~objective:(Engine.Objective.make ~goal ())
           ())
    in
    let r = job_result sched id in
    Alcotest.(check string)
      (Engine.Objective.goal_to_string goal ^ " done")
      "done"
      (Engine.Job.status_to_string r.Engine.Job.status);
    let circuit, p0 = ok_or_fail (Engine.Source.load src) in
    ignore p0;
    let lp =
      match Engine.Scheduler.legalized sched id with
      | Some lp -> lp
      | None -> Alcotest.fail "no legalised placement"
    in
    let spec =
      Kraftwerk.Placer.route_spec
        (Engine.Objective.config (Engine.Objective.make ~goal ()))
        circuit
    in
    let routed = ok_or_fail_route (Route.Grouter.route circuit lp spec) in
    (r, routed.Route.Grouter.total_overflow)
  in
  let rw, wl_ovfl = run Engine.Objective.Wirelength in
  let rr, rt_ovfl = run Engine.Objective.Routability in
  Alcotest.(check bool) "wirelength objective skips routing" true
    (rw.Engine.Job.routed_overflow = None);
  (match rr.Engine.Job.routed_overflow with
  | None -> Alcotest.fail "routability result without routed overflow"
  | Some o ->
    Alcotest.(check bool) "result overflow consistent" true (Float.is_finite o));
  Alcotest.(check bool)
    (Printf.sprintf "routed overflow reduced >= 15%% (%.4g -> %.4g)" wl_ovfl
       rt_ovfl)
    true
    (rt_ovfl <= 0.85 *. wl_ovfl)

(* ------------------------------------------------------------------ *)
(* Serialisation and protocol                                          *)

let test_spec_json_round_trip () =
  let full =
    Engine.Job.spec ~source:(source ()) ~mode:Engine.Job.Fast ~effort:4
      ~timing:true ~priority:3 ~deadline:1.5 ~domains:2 ~max_steps:9
      ~flow:Engine.Job.Multilevel ~start:(Engine.Job.Resume "ck.json")
      ~checkpoint:"out.json" ~checkpoint_every:7 ~trace:"t.jsonl" ()
  in
  let minimal = Engine.Job.spec ~source:(Engine.Source.File "a.ckt") () in
  List.iter
    (fun s ->
      match Engine.Job.spec_of_json (Engine.Job.spec_to_json s) with
      | Error e -> Alcotest.failf "spec does not round-trip: %s" e
      | Ok s' ->
        Alcotest.(check bool) "spec round-trips structurally" true (s = s'))
    [ full; minimal ]

let parse_request line =
  match Obs.Json.of_string line with
  | Error e -> Alcotest.failf "bad request JSON: %s" e
  | Ok v -> Engine.Protocol.request_of_json v

let test_protocol_request_parsing () =
  (match
     parse_request
       {|{"cmd":"submit","job":{"profile":"fract","scale":0.5,"seed":7,"mode":"fast"}}|}
   with
  | Ok (Engine.Protocol.Submit _) -> ()
  | Ok _ -> Alcotest.fail "submit parsed to another request"
  | Error e -> Alcotest.failf "submit rejected: %s" (Engine.Protocol.error_message e));
  (match parse_request {|{"cmd":"step"}|} with
  | Ok (Engine.Protocol.Step 1) -> ()
  | _ -> Alcotest.fail "bare step must default to one turn");
  (match parse_request {|{"cmd":"step","turns":5}|} with
  | Ok (Engine.Protocol.Step 5) -> ()
  | _ -> Alcotest.fail "step with turns");
  (match parse_request {|{"cmd":"wait","id":2}|} with
  | Ok (Engine.Protocol.Wait 2) -> ()
  | _ -> Alcotest.fail "wait with id");
  (* Malformed requests come back as errors, never exceptions. *)
  List.iter
    (fun line ->
      match parse_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed request %s" line)
    [
      {|{"cmd":"submit"}|};
      {|{"cmd":"result"}|};
      {|{"cmd":"cancel","id":"one"}|};
      {|{"cmd":"frobnicate"}|};
      {|{"turns":5}|};
    ]

let member_exn name v =
  match Obs.Json.member name v with
  | Some x -> x
  | None -> Alcotest.failf "response without %S field" name

let test_protocol_session () =
  let sched = Engine.Scheduler.create () in
  let handle line =
    match parse_request line with
    | Error e ->
      Alcotest.failf "request rejected: %s" (Engine.Protocol.error_message e)
    | Ok req ->
      let reply, stop = Engine.Protocol.handle sched req in
      (Engine.Protocol.render Engine.Protocol.V2 ~seq:None reply, stop)
  in
  let resp, stop =
    handle
      {|{"cmd":"submit","job":{"profile":"fract","scale":0.5,"seed":7,"mode":"fast","max_steps":3}}|}
  in
  Alcotest.(check bool) "submit not a shutdown" false stop;
  Alcotest.(check bool) "submit ok" true
    (member_exn "ok" resp = Obs.Json.Bool true);
  Alcotest.(check bool) "submit id 1" true
    (member_exn "id" resp = Obs.Json.Num 1.);
  let resp, _ = handle {|{"cmd":"status","id":1}|} in
  Alcotest.(check bool) "queued before any step" true
    (member_exn "status" resp = Obs.Json.Str "queued");
  let resp, _ = handle {|{"cmd":"result","id":1}|} in
  Alcotest.(check bool) "result refused while non-terminal" true
    (member_exn "ok" resp = Obs.Json.Bool false);
  let resp, _ = handle {|{"cmd":"drain"}|} in
  Alcotest.(check bool) "drain ok" true
    (member_exn "ok" resp = Obs.Json.Bool true);
  let resp, _ = handle {|{"cmd":"result","id":1}|} in
  Alcotest.(check bool) "result ok once terminal" true
    (member_exn "ok" resp = Obs.Json.Bool true);
  (match member_exn "result" resp with
  | Obs.Json.Obj _ as r ->
    Alcotest.(check bool) "terminal status done" true
      (member_exn "status" r = Obs.Json.Str "done");
    (* The result must itself parse as a Job.result. *)
    (match Engine.Job.result_of_json r with
    | Ok jr -> Alcotest.(check int) "iterations" 3 jr.Engine.Job.iterations
    | Error e -> Alcotest.failf "result does not validate: %s" e)
  | _ -> Alcotest.fail "result is not an object");
  let resp, _ = handle {|{"cmd":"result","id":99}|} in
  Alcotest.(check bool) "unknown id is an error" true
    (member_exn "ok" resp = Obs.Json.Bool false);
  let _, stop = handle {|{"cmd":"shutdown"}|} in
  Alcotest.(check bool) "shutdown stops the loop" true stop

let suite =
  [
    Alcotest.test_case "checkpoint save/load round-trip" `Quick
      test_checkpoint_round_trip;
    Alcotest.test_case "checkpoint digest guards" `Quick
      test_checkpoint_digest_guards;
    Alcotest.test_case "resume is bitwise for both net models, pools 1/2/4"
      `Slow test_resume_bitwise_models_pools;
    Alcotest.test_case "resume is bitwise with the controller active" `Slow
      test_resume_bitwise_controller_active;
    Alcotest.test_case "engine resume matches uninterrupted run" `Slow
      test_engine_resume_matches_uninterrupted;
    Alcotest.test_case "timing-driven resume carries criticalities" `Slow
      test_engine_resume_timing_driven;
    Alcotest.test_case "impossible deadline degrades to legal placement" `Quick
      test_deadline_degrades_to_legal;
    Alcotest.test_case "cancel writes a resumable checkpoint" `Slow
      test_cancel_checkpoint_resume;
    Alcotest.test_case "eco warm-start job matches direct Eco.replace" `Slow
      test_eco_job_matches_direct_replace;
    Alcotest.test_case "interleaving preserves solo trajectories" `Slow
      test_concurrent_interleaving_preserves_trajectories;
    Alcotest.test_case "sharded execution is bitwise solo for shards 1/2/4"
      `Slow test_sharded_matches_solo;
    Alcotest.test_case "forced stealing leaves trajectories bitwise" `Slow
      test_forced_stealing_bitwise;
    Alcotest.test_case "sharded resume with an effort preset is bitwise" `Slow
      test_sharded_resume_with_effort;
    Alcotest.test_case "sharded cancel and deadline degrade to legal" `Slow
      test_sharded_cancel_deadline_legal;
    Alcotest.test_case "multilevel job matches direct V-cycle" `Slow
      test_multilevel_job_matches_direct;
    Alcotest.test_case "multilevel checkpoint guards and round-trip" `Slow
      test_multilevel_checkpoint_guards;
    Alcotest.test_case "multilevel resume is bitwise for shards 1/2/4" `Slow
      test_multilevel_resume_bitwise_shards;
    Alcotest.test_case "congestion resume is bitwise for shards 1/2/4" `Slow
      test_congestion_resume_bitwise_shards;
    Alcotest.test_case "routability objective reduces routed overflow" `Slow
      test_routability_reduces_routed_overflow;
    Alcotest.test_case "spec json round-trip" `Quick test_spec_json_round_trip;
    Alcotest.test_case "protocol request parsing" `Quick
      test_protocol_request_parsing;
    Alcotest.test_case "protocol submit/drain/result session" `Quick
      test_protocol_session;
  ]
