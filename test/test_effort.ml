(* LB/UB envelope regression across effort presets.

   For fract and primary1 (pinned seed 42, a single domain) at efforts
   1, 5 and 9, the convergence controller's envelope telemetry is held
   to:

   - every legalization point carries a coherent (lb, ub, gap) triple
     with lb <= ub,
   - the final legalized HPWL lands inside the recorded envelope
     [min lb, min ub] — the full Abacus/Improve/Domino pipeline must do
     at least as well as the best cheap Tetris snapshot,
   - the running-minimum gap is non-increasing and the last quartile of
     probes is at least as tight as the first (the envelope tightened),
   - effort 9 never finishes with a worse final legalized HPWL than
     effort 1, and no run exceeds its preset's iteration budget. *)

type run = {
  records : Obs.Telemetry.iteration list;
  iterations : int;
  max_iterations : int;
  final_legalized : float;
  stop_reason : Kraftwerk.Controller.reason option;
}

let profiles = [ "fract"; "primary1" ]

let efforts = [ 1; 5; 9 ]

let finalize circuit global =
  let rep = Legalize.Abacus.legalize circuit global () in
  let p = rep.Legalize.Abacus.placement in
  ignore (Legalize.Improve.run circuit p);
  ignore (Legalize.Domino.run circuit p);
  p

let run_one profile effort =
  let prof = Circuitgen.Profiles.find profile in
  let circuit, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params ~scale:1.0 prof ~seed:42)
  in
  let p0 = Circuitgen.Gen.initial_placement circuit pads in
  let config =
    { (Kraftwerk.Config.effort effort) with Kraftwerk.Config.domains = Some 1 }
  in
  Numeric.Poisson.clear_kernel_cache ();
  Obs.Registry.set_enabled true;
  Obs.Registry.reset ();
  let sink, read = Obs.Sink.collecting () in
  let state, reports =
    Obs.Sink.with_sink sink (fun () -> Kraftwerk.Placer.run config circuit p0)
  in
  Obs.Registry.set_enabled false;
  let records, _ = read () in
  let final =
    Metrics.Wirelength.hpwl circuit
      (finalize circuit state.Kraftwerk.Placer.placement)
  in
  {
    records;
    iterations = List.length reports;
    max_iterations = config.Kraftwerk.Config.max_iterations;
    final_legalized = final;
    stop_reason = Kraftwerk.Placer.stop_reason state;
  }

let the_runs : (string * int, run) Hashtbl.t Lazy.t =
  lazy
    (let tbl = Hashtbl.create 8 in
     List.iter
       (fun profile ->
         List.iter
           (fun effort ->
             Hashtbl.replace tbl (profile, effort) (run_one profile effort))
           efforts)
       profiles;
     tbl)

let get profile effort = Hashtbl.find (Lazy.force the_runs) (profile, effort)

let probes r =
  List.filter_map
    (fun (it : Obs.Telemetry.iteration) ->
      match (it.Obs.Telemetry.ub_hpwl, it.Obs.Telemetry.gap) with
      | Some ub, Some gap -> Some (it.Obs.Telemetry.lb_hpwl, ub, gap)
      | None, None -> None
      | _ -> Alcotest.fail "ub and gap must be present together")
    r.records

let each_run f =
  List.iter
    (fun profile ->
      List.iter (fun effort -> f profile effort (get profile effort)) efforts)
    profiles

let test_envelope_well_ordered () =
  each_run (fun profile effort r ->
      let ps = probes r in
      Alcotest.(check bool)
        (Printf.sprintf "%s e%d: at least two probes (%d)" profile effort
           (List.length ps))
        true
        (List.length ps >= 2);
      List.iter
        (fun (lb, ub, gap) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s e%d: 0 < lb <= ub" profile effort)
            true
            (lb > 0. && lb <= ub);
          Alcotest.(check bool)
            (Printf.sprintf "%s e%d: gap consistent" profile effort)
            true
            (Float.abs (gap -. ((ub -. lb) /. ub)) < 1e-12))
        ps)

let test_final_inside_envelope () =
  each_run (fun profile effort r ->
      let ps = probes r in
      let min_lb =
        List.fold_left (fun acc (lb, _, _) -> Float.min acc lb) Float.infinity
          ps
      in
      let min_ub =
        List.fold_left (fun acc (_, ub, _) -> Float.min acc ub) Float.infinity
          ps
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s e%d: final %.1f within envelope [%.1f, %.1f]"
           profile effort r.final_legalized min_lb min_ub)
        true
        (min_lb <= r.final_legalized && r.final_legalized <= min_ub))

let test_gap_tightens () =
  each_run (fun profile effort r ->
      let gaps = List.map (fun (_, _, g) -> g) (probes r) in
      (* Running minimum is non-increasing by construction; recomputing
         it from the emitted raw gaps also validates those values. *)
      let _ =
        List.fold_left
          (fun acc g ->
            let m = Float.min acc g in
            Alcotest.(check bool)
              (Printf.sprintf "%s e%d: running min monotone" profile effort)
              true (m <= acc);
            m)
          Float.infinity gaps
      in
      let n = List.length gaps in
      let q = max 1 (n / 4) in
      let head = List.filteri (fun i _ -> i < q) gaps in
      let tail = List.filteri (fun i _ -> i >= n - q) gaps in
      let min_l = List.fold_left Float.min Float.infinity in
      Alcotest.(check bool)
        (Printf.sprintf
           "%s e%d: last quartile (%.4f) at least as tight as first (%.4f)"
           profile effort (min_l tail) (min_l head))
        true
        (min_l tail <= min_l head))

let test_effort_ordering () =
  List.iter
    (fun profile ->
      let lo = get profile 1 and hi = get profile 9 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: effort 9 (%.1f) no worse than effort 1 (%.1f)"
           profile hi.final_legalized lo.final_legalized)
        true
        (hi.final_legalized <= lo.final_legalized))
    profiles

let test_budgets_respected () =
  each_run (fun profile effort r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s e%d: %d iterations within budget %d" profile
           effort r.iterations r.max_iterations)
        true
        (r.iterations <= r.max_iterations);
      if r.iterations < r.max_iterations then
        Alcotest.(check bool)
          (Printf.sprintf "%s e%d: early stop carries a reason" profile effort)
          true (r.stop_reason <> None))

let suite =
  [
    Alcotest.test_case "envelope well-ordered at every probe" `Slow
      test_envelope_well_ordered;
    Alcotest.test_case "final legalized HPWL inside the envelope" `Slow
      test_final_inside_envelope;
    Alcotest.test_case "gap tightens over the run" `Slow test_gap_tightens;
    Alcotest.test_case "effort 9 at least as good as effort 1" `Slow
      test_effort_ordering;
    Alcotest.test_case "iteration budgets respected" `Slow
      test_budgets_respected;
  ]
