(* Round-trip tests for the circuit/placement text format. *)

let with_temp f =
  let file = Filename.temp_file "kraftwerk_test" ".ckt" in
  Fun.protect ~finally:(fun () -> Sys.remove file) (fun () -> f file)

let sample_circuit () =
  let prof = Circuitgen.Profiles.find "fract" in
  let params = Circuitgen.Profiles.params ~scale:0.5 prof ~seed:9 in
  fst (Circuitgen.Gen.generate params)

let io_exn = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Netlist.Io.error_message e)

let test_circuit_roundtrip () =
  let c = sample_circuit () in
  with_temp (fun file ->
      Netlist.Io.save_circuit file c;
      let c' = io_exn (Netlist.Io.load_circuit file) in
      Alcotest.(check string) "name" c.Netlist.Circuit.name c'.Netlist.Circuit.name;
      Alcotest.(check int) "cells" (Netlist.Circuit.num_cells c)
        (Netlist.Circuit.num_cells c');
      Alcotest.(check int) "nets" (Netlist.Circuit.num_nets c)
        (Netlist.Circuit.num_nets c');
      Alcotest.(check (float 1e-12)) "row height" c.Netlist.Circuit.row_height
        c'.Netlist.Circuit.row_height;
      Alcotest.(check (float 1e-9)) "region width"
        (Geometry.Rect.width c.Netlist.Circuit.region)
        (Geometry.Rect.width c'.Netlist.Circuit.region);
      Array.iteri
        (fun i (cl : Netlist.Cell.t) ->
          let cl' = c'.Netlist.Circuit.cells.(i) in
          Alcotest.(check string) "cell name" cl.Netlist.Cell.name cl'.Netlist.Cell.name;
          Alcotest.(check (float 1e-12)) "cell width" cl.Netlist.Cell.width
            cl'.Netlist.Cell.width;
          Alcotest.(check bool) "cell fixed" cl.Netlist.Cell.fixed cl'.Netlist.Cell.fixed;
          Alcotest.(check bool) "cell seq" cl.Netlist.Cell.sequential
            cl'.Netlist.Cell.sequential)
        c.Netlist.Circuit.cells;
      Array.iteri
        (fun i (n : Netlist.Net.t) ->
          let n' = c'.Netlist.Circuit.nets.(i) in
          Alcotest.(check int) "net degree" (Netlist.Net.degree n) (Netlist.Net.degree n');
          Array.iteri
            (fun j (p : Netlist.Net.pin) ->
              Alcotest.(check int) "pin cell" p.Netlist.Net.cell
                n'.Netlist.Net.pins.(j).Netlist.Net.cell)
            n.Netlist.Net.pins)
        c.Netlist.Circuit.nets)

let test_placement_roundtrip () =
  let c = sample_circuit () in
  let rng = Numeric.Rng.create 4 in
  let n = Netlist.Circuit.num_cells c in
  let p =
    {
      Netlist.Placement.x = Array.init n (fun _ -> Numeric.Rng.uniform rng 0. 100.);
      y = Array.init n (fun _ -> Numeric.Rng.uniform rng 0. 100.);
    }
  in
  with_temp (fun file ->
      Netlist.Io.save_placement file p;
      let p' = io_exn (Netlist.Io.load_placement file ~num_cells:n) in
      Alcotest.(check bool) "x restored" true
        (Numeric.Vec.max_abs_diff p.Netlist.Placement.x p'.Netlist.Placement.x = 0.);
      Alcotest.(check bool) "y restored" true
        (Numeric.Vec.max_abs_diff p.Netlist.Placement.y p'.Netlist.Placement.y = 0.))

let test_placement_missing_cell_rejected () =
  with_temp (fun file ->
      let oc = open_out file in
      output_string oc "pos 0 1.0 2.0\n";
      close_out oc;
      match Netlist.Io.load_placement file ~num_cells:2 with
      | Ok _ -> Alcotest.fail "expected a typed error"
      | Error e ->
        Alcotest.(check bool) "error names the file" true
          (e.Netlist.Io.file = Some file))

let test_malformed_circuit_rejected () =
  with_temp (fun file ->
      let oc = open_out file in
      output_string oc "circuit x\nbogus line here\n";
      close_out oc;
      match Netlist.Io.load_circuit file with
      | Ok _ -> Alcotest.fail "expected a typed error"
      | Error e ->
        Alcotest.(check (option int)) "error carries the line" (Some 2)
          e.Netlist.Io.line)

let test_missing_region_rejected () =
  with_temp (fun file ->
      let oc = open_out file in
      output_string oc "circuit x\nrowheight 16\n";
      close_out oc;
      match Netlist.Io.load_circuit file with
      | Ok _ -> Alcotest.fail "expected a typed error"
      | Error _ -> ())

let test_hpwl_preserved_by_roundtrip () =
  let c = sample_circuit () in
  let p = Netlist.Placement.centered c ~fixed_positions:[] in
  with_temp (fun file ->
      Netlist.Io.save_circuit file c;
      let c' = io_exn (Netlist.Io.load_circuit file) in
      Alcotest.(check (float 1e-6)) "same hpwl"
        (Metrics.Wirelength.hpwl c p)
        (Metrics.Wirelength.hpwl c' p))

let suite =
  [
    Alcotest.test_case "circuit roundtrip" `Quick test_circuit_roundtrip;
    Alcotest.test_case "placement roundtrip" `Quick test_placement_roundtrip;
    Alcotest.test_case "placement missing cell" `Quick test_placement_missing_cell_rejected;
    Alcotest.test_case "malformed circuit" `Quick test_malformed_circuit_rejected;
    Alcotest.test_case "missing region" `Quick test_missing_region_rejected;
    Alcotest.test_case "hpwl preserved" `Quick test_hpwl_preserved_by_roundtrip;
  ]
