(* Unit and property tests for Numeric.Sparse. *)

let approx = Alcotest.float 1e-9

let test_empty () =
  let m = Numeric.Sparse.finalize (Numeric.Sparse.builder 3) in
  Alcotest.(check int) "dim" 3 (Numeric.Sparse.dim m);
  Alcotest.(check int) "nnz" 0 (Numeric.Sparse.nnz m)

let test_duplicates_summed () =
  let b = Numeric.Sparse.builder 2 in
  Numeric.Sparse.add b 0 1 2.;
  Numeric.Sparse.add b 0 1 3.;
  let m = Numeric.Sparse.finalize b in
  Alcotest.check approx "summed" 5. (Numeric.Sparse.entry m 0 1);
  Alcotest.(check int) "one entry" 1 (Numeric.Sparse.nnz m)

let test_zeros_dropped () =
  let b = Numeric.Sparse.builder 2 in
  Numeric.Sparse.add b 0 1 2.;
  Numeric.Sparse.add b 0 1 (-2.);
  let m = Numeric.Sparse.finalize b in
  Alcotest.(check int) "cancelled" 0 (Numeric.Sparse.nnz m)

let test_add_sym () =
  let b = Numeric.Sparse.builder 3 in
  Numeric.Sparse.add_sym b 0 2 4.;
  Numeric.Sparse.add_sym b 1 1 7.;
  let m = Numeric.Sparse.finalize b in
  Alcotest.check approx "(0,2)" 4. (Numeric.Sparse.entry m 0 2);
  Alcotest.check approx "(2,0)" 4. (Numeric.Sparse.entry m 2 0);
  Alcotest.check approx "diag once" 7. (Numeric.Sparse.entry m 1 1);
  Alcotest.(check bool) "symmetric" true (Numeric.Sparse.is_symmetric m)

let test_mul_known () =
  let m = Numeric.Sparse.of_dense [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let y = Numeric.Vec.create 2 in
  Numeric.Sparse.mul m [| 1.; 2. |] y;
  Alcotest.check approx "y0" 4. y.(0);
  Alcotest.check approx "y1" 7. y.(1)

let test_diagonal () =
  let m = Numeric.Sparse.of_dense [| [| 5.; 1. |]; [| 0.; 0. |] |] in
  let d = Numeric.Sparse.diagonal m in
  Alcotest.check approx "d0" 5. d.(0);
  Alcotest.check approx "d1 missing = 0" 0. d.(1)

let test_dense_roundtrip () =
  let a = [| [| 1.; 0.; 2. |]; [| 0.; 3.; 0. |]; [| 2.; 0.; 4. |] |] in
  let back = Numeric.Sparse.to_dense (Numeric.Sparse.of_dense a) in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v -> Alcotest.check approx (Printf.sprintf "(%d,%d)" i j) v back.(i).(j))
        row)
    a

let test_out_of_range () =
  let b = Numeric.Sparse.builder 2 in
  Alcotest.check_raises "bad index" (Invalid_argument "Sparse.add: index out of range")
    (fun () -> Numeric.Sparse.add b 0 2 1.)

let test_builder_reuse_growth () =
  let b = Numeric.Sparse.builder 10 in
  for i = 0 to 9 do
    for j = 0 to 9 do
      Numeric.Sparse.add b i j (float_of_int ((i * 10) + j + 1))
    done
  done;
  let m = Numeric.Sparse.finalize b in
  Alcotest.(check int) "dense nnz" 100 (Numeric.Sparse.nnz m);
  Alcotest.check approx "corner" 100. (Numeric.Sparse.entry m 9 9)

(* Random sparse symmetric matrix as triplets. *)
let triplets_gen =
  QCheck.(
    list_of_size Gen.(int_range 1 60)
      (triple (int_bound 7) (int_bound 7) (float_range (-5.) 5.)))

let prop_mul_matches_dense =
  QCheck.Test.make ~name:"CSR mul matches dense mul" triplets_gen (fun ts ->
      let n = 8 in
      let b = Numeric.Sparse.builder n in
      let dense = Array.make_matrix n n 0. in
      List.iter
        (fun (i, j, v) ->
          Numeric.Sparse.add b i j v;
          dense.(i).(j) <- dense.(i).(j) +. v)
        ts;
      let m = Numeric.Sparse.finalize b in
      let x = Array.init n (fun i -> float_of_int (i + 1)) in
      let y = Numeric.Vec.create n in
      Numeric.Sparse.mul m x y;
      let expected =
        Array.init n (fun i ->
            Array.fold_left ( +. ) 0. (Array.mapi (fun j v -> v *. x.(j)) dense.(i)))
      in
      Numeric.Vec.max_abs_diff expected y < 1e-6)

let prop_sym_builder_symmetric =
  QCheck.Test.make ~name:"add_sym yields symmetric matrix" triplets_gen
    (fun ts ->
      let b = Numeric.Sparse.builder 8 in
      List.iter (fun (i, j, v) -> Numeric.Sparse.add_sym b i j v) ts;
      Numeric.Sparse.is_symmetric (Numeric.Sparse.finalize b))

(* --- symbolic pattern + numeric refill ------------------------------- *)

let bits_equal_mat a b =
  let da = Numeric.Sparse.to_dense a and db = Numeric.Sparse.to_dense b in
  Array.length da = Array.length db
  && Array.for_all2
       (fun ra rb ->
         Array.for_all2
           (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
           ra rb)
       da db

let prop_refill_bitwise =
  QCheck.Test.make ~count:300
    ~name:"refill through cached pattern = finalize, bitwise"
    QCheck.(pair triplets_gen small_nat)
    (fun (ts, seed) ->
      QCheck.assume (ts <> []);
      let b = Numeric.Sparse.builder 8 in
      List.iter (fun (i, j, v) -> Numeric.Sparse.add b i j v) ts;
      let pat, m0 = Numeric.Sparse.compile b in
      let ok0 = bits_equal_mat m0 (Numeric.Sparse.finalize b) in
      (* Same (i,j) stream, fresh values — including exact zeros, to
         exercise the cancellation-compaction parity path. *)
      let rng = Numeric.Rng.create seed in
      Numeric.Sparse.clear b;
      List.iter
        (fun (i, j, _) ->
          let v =
            if Numeric.Rng.int rng 4 = 0 then 0.
            else Numeric.Rng.uniform rng (-5.) 5.
          in
          Numeric.Sparse.add b i j v)
        ts;
      ok0
      && Numeric.Sparse.pattern_matches pat b
      && bits_equal_mat (Numeric.Sparse.refill pat b) (Numeric.Sparse.finalize b))

let test_pattern_mismatch () =
  let b = Numeric.Sparse.builder 4 in
  Numeric.Sparse.add b 0 1 1.;
  Numeric.Sparse.add b 2 3 2.;
  let pat, _ = Numeric.Sparse.compile b in
  Alcotest.(check bool) "same stream matches" true
    (Numeric.Sparse.pattern_matches pat b);
  Numeric.Sparse.add b 1 1 3.;
  Alcotest.(check bool) "longer stream rejected" false
    (Numeric.Sparse.pattern_matches pat b);
  Numeric.Sparse.clear b;
  Numeric.Sparse.add b 0 1 1.;
  Numeric.Sparse.add b 3 2 2.;
  Alcotest.(check bool) "swapped indices rejected" false
    (Numeric.Sparse.pattern_matches pat b)

let test_refill_cancellation () =
  let b = Numeric.Sparse.builder 3 in
  Numeric.Sparse.add b 0 1 2.;
  Numeric.Sparse.add b 0 1 3.;
  Numeric.Sparse.add b 1 2 1.;
  let pat, m = Numeric.Sparse.compile b in
  Alcotest.(check int) "initial nnz" 2 (Numeric.Sparse.nnz m);
  Numeric.Sparse.clear b;
  Numeric.Sparse.add b 0 1 2.;
  Numeric.Sparse.add b 0 1 (-2.);
  Numeric.Sparse.add b 1 2 5.;
  let m2 = Numeric.Sparse.refill pat b in
  Alcotest.(check int) "cancelled slot dropped" 1 (Numeric.Sparse.nnz m2);
  Alcotest.check approx "survivor" 5. (Numeric.Sparse.entry m2 1 2);
  (* The pattern survives a compaction: a later refill with
     non-cancelling values restores the full slot set. *)
  Numeric.Sparse.clear b;
  Numeric.Sparse.add b 0 1 1.;
  Numeric.Sparse.add b 0 1 1.;
  Numeric.Sparse.add b 1 2 4.;
  let m3 = Numeric.Sparse.refill pat b in
  Alcotest.(check int) "slots restored" 2 (Numeric.Sparse.nnz m3);
  Alcotest.check approx "(0,1)" 2. (Numeric.Sparse.entry m3 0 1)

let test_refill_parallel_domains () =
  (* Large enough to cross the parallel refill threshold; the result
     must be bitwise-identical to the sequential finalize at any pool
     size. *)
  let n = 700 and m = 8000 in
  let rng = Numeric.Rng.create 11 in
  let ti = Array.init m (fun _ -> Numeric.Rng.int rng n) in
  let tj = Array.init m (fun _ -> Numeric.Rng.int rng n) in
  let b = Numeric.Sparse.builder n in
  let fill seed =
    Numeric.Sparse.clear b;
    let vr = Numeric.Rng.create seed in
    for k = 0 to m - 1 do
      Numeric.Sparse.add_sym b ti.(k) tj.(k) (Numeric.Rng.uniform vr (-2.) 2.)
    done;
    for i = 0 to n - 1 do
      Numeric.Sparse.add_diag b i (Numeric.Rng.uniform vr 0.5 4.)
    done
  in
  fill 1;
  let pat, _ = Numeric.Sparse.compile b in
  fill 2;
  let reference = Numeric.Sparse.finalize b in
  Fun.protect
    ~finally:(fun () -> Numeric.Parallel.set_num_domains 1)
    (fun () ->
      List.iter
        (fun d ->
          Numeric.Parallel.set_num_domains d;
          Alcotest.(check bool)
            (Printf.sprintf "pattern holds at %d domains" d)
            true
            (Numeric.Sparse.pattern_matches pat b);
          Alcotest.(check bool)
            (Printf.sprintf "bitwise at %d domains" d)
            true
            (bits_equal_mat (Numeric.Sparse.refill pat b) reference))
        [ 1; 2; 4 ])

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "duplicates summed" `Quick test_duplicates_summed;
    Alcotest.test_case "zeros dropped" `Quick test_zeros_dropped;
    Alcotest.test_case "add_sym" `Quick test_add_sym;
    Alcotest.test_case "mul known" `Quick test_mul_known;
    Alcotest.test_case "diagonal" `Quick test_diagonal;
    Alcotest.test_case "dense roundtrip" `Quick test_dense_roundtrip;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    Alcotest.test_case "builder growth" `Quick test_builder_reuse_growth;
    QCheck_alcotest.to_alcotest prop_mul_matches_dense;
    QCheck_alcotest.to_alcotest prop_sym_builder_symmetric;
    Alcotest.test_case "pattern mismatch detection" `Quick test_pattern_mismatch;
    Alcotest.test_case "refill cancellation parity" `Quick
      test_refill_cancellation;
    Alcotest.test_case "refill across domain pools" `Quick
      test_refill_parallel_domains;
    QCheck_alcotest.to_alcotest prop_refill_bitwise;
  ]
