(* Tests for the supply/demand density model, the cell force computation
   and the stopping criterion. *)

let pin c = { Netlist.Net.cell = c; dx = 0.; dy = 0. }

let region = Geometry.Rect.make ~x_lo:0. ~y_lo:0. ~x_hi:64. ~y_hi:64.

let small_circuit ?(n = 8) () =
  let cells =
    Array.init n (fun i ->
        Netlist.Cell.make ~id:i ~name:(Printf.sprintf "c%d" i) ~width:8.
          ~height:8. ())
  in
  let nets =
    Array.init (n - 1) (fun i ->
        Netlist.Net.make ~id:i ~name:(Printf.sprintf "n%d" i)
          [| pin i; pin (i + 1) |])
  in
  Netlist.Circuit.make ~name:"d" ~cells ~nets ~region ~row_height:8.

let clumped_placement c =
  Netlist.Placement.centered c ~fixed_positions:[]

let spread_placement (c : Netlist.Circuit.t) =
  let n = Netlist.Circuit.num_cells c in
  let p = Netlist.Placement.create c in
  (* 8 cells on a uniform 4×2 lattice inside 64×64. *)
  for i = 0 to n - 1 do
    p.Netlist.Placement.x.(i) <- 8. +. (float_of_int (i mod 4) *. 16.);
    p.Netlist.Placement.y.(i) <- 16. +. (float_of_int (i / 4) *. 32.)
  done;
  p

let test_density_sums_to_zero () =
  let c = small_circuit () in
  let g = Density.Density_map.build c (clumped_placement c) ~nx:8 ~ny:8 () in
  Alcotest.(check (float 1e-9)) "balanced" 0. (Geometry.Grid2.total g)

let test_density_positive_at_clump () =
  let c = small_circuit () in
  let g = Density.Density_map.build c (clumped_placement c) ~nx:8 ~ny:8 () in
  let ix, iy = Geometry.Grid2.locate g 32. 32. in
  Alcotest.(check bool) "over-dense centre" true (Geometry.Grid2.get g ix iy > 0.);
  Alcotest.(check bool) "under-dense corner" true (Geometry.Grid2.get g 0 0 < 0.)

let test_occupancy_values () =
  let c = small_circuit ~n:1 () in
  let p = Netlist.Placement.create c in
  p.Netlist.Placement.x.(0) <- 4.;
  p.Netlist.Placement.y.(0) <- 4.;
  (* One 8×8 cell exactly covering bin (0,0) of an 8×8 grid over 64×64. *)
  let occ = Density.Density_map.occupancy c p ~nx:8 ~ny:8 in
  Alcotest.(check (float 1e-9)) "full bin" 1. (Geometry.Grid2.get occ 0 0);
  Alcotest.(check (float 1e-9)) "empty bin" 0. (Geometry.Grid2.get occ 4 4)

let test_extra_density_rebalances () =
  let c = small_circuit () in
  let extra = Geometry.Grid2.create region ~nx:8 ~ny:8 in
  Geometry.Grid2.set extra 0 0 100.;
  let g =
    Density.Density_map.build c (clumped_placement c) ~nx:8 ~ny:8 ~extra ()
  in
  (* Still balanced after the injection. *)
  Alcotest.(check (float 1e-6)) "balanced with extra" 0. (Geometry.Grid2.total g);
  Alcotest.(check bool) "extra bin now positive" true (Geometry.Grid2.get g 0 0 > 0.)

let test_extra_dimension_mismatch () =
  let c = small_circuit () in
  let extra = Geometry.Grid2.create region ~nx:4 ~ny:4 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Density_map.build: extra grid dimension mismatch")
    (fun () ->
      ignore (Density.Density_map.build c (clumped_placement c) ~nx:8 ~ny:8 ~extra ()))

let test_auto_bins_in_range () =
  let prof = Circuitgen.Profiles.find "struct" in
  let circuit, _ =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params ~scale:0.5 prof ~seed:1)
  in
  let nx, ny = Density.Density_map.auto_bins circuit in
  Alcotest.(check bool) "nx in range" true (nx >= 8 && nx <= 128);
  Alcotest.(check bool) "ny in range" true (ny >= 8 && ny <= 128)

(* --- forces --- *)

let forces_for c p =
  let var_of_cell, n_movable = Qp.System.index_map c in
  Density.Forces.at_cells c p ~var_of_cell ~n_movable ~k_param:0.2 ~nx:16 ~ny:16 ()

let test_forces_zero_for_uniform () =
  (* Cells exactly tiling the region: density is flat, forces vanish. *)
  let cells =
    Array.init 4 (fun i ->
        Netlist.Cell.make ~id:i ~name:(Printf.sprintf "c%d" i) ~width:32.
          ~height:32. ())
  in
  let nets =
    [| Netlist.Net.make ~id:0 ~name:"n" (Array.init 4 (fun i -> pin i)) |]
  in
  let c = Netlist.Circuit.make ~name:"t" ~cells ~nets ~region ~row_height:8. in
  let p = Netlist.Placement.create c in
  let coords = [| (16., 16.); (48., 16.); (16., 48.); (48., 48.) |] in
  Array.iteri
    (fun i (x, y) ->
      p.Netlist.Placement.x.(i) <- x;
      p.Netlist.Placement.y.(i) <- y)
    coords;
  let f = forces_for c p in
  Array.iter
    (fun v -> Alcotest.(check (float 1e-6)) "fx ~ 0" 0. v)
    f.Density.Forces.fx

let test_forces_push_clump_apart () =
  (* Two cells stacked left of centre; with e entering C·p + d + e = 0,
     moving along −e reduces density, so the force on the leftmost cell
     must have e pointing right... the repelling direction is encoded by
     the solve: we check the two cells get opposite-signed x forces. *)
  let c = small_circuit ~n:2 () in
  let p = Netlist.Placement.create c in
  p.Netlist.Placement.x.(0) <- 28.;
  p.Netlist.Placement.x.(1) <- 36.;
  p.Netlist.Placement.y.(0) <- 32.;
  p.Netlist.Placement.y.(1) <- 32.;
  let f = forces_for c p in
  Alcotest.(check bool) "opposite x forces" true
    (f.Density.Forces.fx.(0) *. f.Density.Forces.fx.(1) < 0.)

let test_forces_scale_bound () =
  let c = small_circuit () in
  let f = forces_for c (clumped_placement c) in
  let target = 0.2 *. (64. +. 64.) in
  Array.iteri
    (fun v fx ->
      let m = sqrt ((fx *. fx) +. (f.Density.Forces.fy.(v) *. f.Density.Forces.fy.(v))) in
      Alcotest.(check bool) "bounded by K(W+H)" true (m <= target +. 1e-6))
    f.Density.Forces.fx

let test_solver_variants_agree_roughly () =
  let c = small_circuit () in
  let p = clumped_placement c in
  let var_of_cell, n_movable = Qp.System.index_map c in
  let f_fft =
    Density.Forces.at_cells c p ~var_of_cell ~n_movable ~k_param:0.2
      ~solver:Density.Forces.Fft ~nx:12 ~ny:12 ()
  in
  let f_dir =
    Density.Forces.at_cells c p ~var_of_cell ~n_movable ~k_param:0.2
      ~solver:Density.Forces.Direct ~nx:12 ~ny:12 ()
  in
  Alcotest.(check bool) "fft = direct" true
    (Numeric.Vec.max_abs_diff f_fft.Density.Forces.fx f_dir.Density.Forces.fx < 1e-6)

(* --- stopping criterion --- *)

let test_stop_false_when_clumped () =
  let c = small_circuit () in
  Alcotest.(check bool) "clumped: keep going" false
    (Density.Stop.should_stop c (clumped_placement c) ~nx:16 ~ny:16 ())

let test_stop_true_when_spread () =
  let c = small_circuit () in
  Alcotest.(check bool) "spread: stop" true
    (Density.Stop.should_stop c (spread_placement c) ~multiplier:16. ~nx:8 ~ny:8 ())

let test_empty_square_monotone () =
  let c = small_circuit () in
  let clumped = Density.Stop.largest_empty_square_area c (clumped_placement c) ~nx:16 ~ny:16 () in
  let spread = Density.Stop.largest_empty_square_area c (spread_placement c) ~nx:16 ~ny:16 () in
  Alcotest.(check bool) "spreading shrinks the largest empty square" true
    (spread < clumped)

(* --- stopping criterion: edge cases ---------------------------------- *)

let test_stop_empty_circuit () =
  let c =
    Netlist.Circuit.make ~name:"empty" ~cells:[||] ~nets:[||] ~region
      ~row_height:8.
  in
  let p = Netlist.Placement.create c in
  Alcotest.(check bool) "no cells: stop immediately" true
    (Density.Stop.should_stop c p ~nx:8 ~ny:8 ());
  Alcotest.(check (float 0.)) "no movable area: zero overflow" 0.
    (Density.Density_map.overflow_ratio c p ~nx:8 ~ny:8)

let test_stop_single_cell () =
  let c = small_circuit ~n:1 () in
  let p = clumped_placement c in
  (* One 8x8 cell in a 64x64 region: there is nothing to spread, so the
     criterion declares convergence immediately regardless of the
     multiplier — the degenerate rule, agreeing with the controller's
     envelope criterion. *)
  Alcotest.(check bool) "single cell: stop immediately" true
    (Density.Stop.should_stop c p ~nx:8 ~ny:8 ());
  Alcotest.(check bool) "single cell: any multiplier stops" true
    (Density.Stop.should_stop c p ~multiplier:1e-9 ~nx:8 ~ny:8 ())

(* The placer must agree with the stop criterion on degenerate circuits:
   a single movable cell is placed at its quadratic optimum in exactly
   one transformation, then both Density.Stop and the envelope criterion
   report convergence. *)
let test_placer_single_movable_one_iteration () =
  let cells =
    [|
      Netlist.Cell.make ~id:0 ~name:"m" ~width:8. ~height:8. ();
      Netlist.Cell.make ~id:1 ~name:"p0" ~width:8. ~height:8. ~fixed:true ();
      Netlist.Cell.make ~id:2 ~name:"p1" ~width:8. ~height:8. ~fixed:true ();
    |]
  in
  let pin c = { Netlist.Net.cell = c; dx = 0.; dy = 0. } in
  let nets =
    [|
      Netlist.Net.make ~id:0 ~name:"n0" [| pin 0; pin 1 |];
      Netlist.Net.make ~id:1 ~name:"n1" [| pin 0; pin 2 |];
    |]
  in
  let c =
    Netlist.Circuit.make ~name:"degenerate" ~cells ~nets ~region ~row_height:8.
  in
  let p = Netlist.Placement.create c in
  p.Netlist.Placement.x.(1) <- 8.;
  p.Netlist.Placement.y.(1) <- 8.;
  p.Netlist.Placement.x.(2) <- 56.;
  p.Netlist.Placement.y.(2) <- 56.;
  p.Netlist.Placement.x.(0) <- 2.;
  p.Netlist.Placement.y.(0) <- 2.;
  let state, reports = Kraftwerk.Placer.run Kraftwerk.Config.standard c p in
  Alcotest.(check int) "exactly one transformation" 1 (List.length reports);
  Alcotest.(check bool) "criterion agrees post-hoc" true
    (Density.Stop.should_stop c state.Kraftwerk.Placer.placement ());
  (* The lone movable cell moves toward the quadratic optimum between
     its two anchors (the hold spring damps the first step, so it need
     not arrive — only leave its corner and stay within the span). *)
  let x = state.Kraftwerk.Placer.placement.Netlist.Placement.x.(0) in
  Alcotest.(check bool) "cell moved toward the optimum" true
    (x > 2. && x >= 8. -. 1e-6 && x <= 56. +. 1e-6)

let test_placer_all_fixed_zero_iterations () =
  let cells =
    Array.init 3 (fun i ->
        Netlist.Cell.make ~id:i ~name:(Printf.sprintf "f%d" i) ~width:8.
          ~height:8. ~fixed:true ())
  in
  let c =
    Netlist.Circuit.make ~name:"allfixed" ~cells ~nets:[||] ~region
      ~row_height:8.
  in
  let p = Netlist.Placement.create c in
  let state, reports = Kraftwerk.Placer.run Kraftwerk.Config.standard c p in
  Alcotest.(check int) "no transformations" 0 (List.length reports);
  Alcotest.(check bool) "criterion agrees" true
    (Density.Stop.should_stop c state.Kraftwerk.Placer.placement ())

let test_stop_all_fixed () =
  let cells =
    Array.init 4 (fun i ->
        Netlist.Cell.make ~id:i ~name:(Printf.sprintf "f%d" i) ~width:8.
          ~height:8. ~fixed:true ())
  in
  let c =
    Netlist.Circuit.make ~name:"fixed" ~cells ~nets:[||] ~region ~row_height:8.
  in
  let p = Netlist.Placement.create c in
  Alcotest.(check bool) "nothing movable: stop immediately" true
    (Density.Stop.should_stop c p ~nx:8 ~ny:8 ())

let test_stop_already_converged_run () =
  (* A placement that already satisfies the criterion must stop the
     placer loop before the first transformation. *)
  let c = small_circuit () in
  let p = spread_placement c in
  let cfg =
    { Kraftwerk.Config.standard with
      Kraftwerk.Config.stop_multiplier = 16.;
      grid = Some (8, 8) }
  in
  let _, reports = Kraftwerk.Placer.run cfg c p in
  Alcotest.(check int) "no transformations" 0 (List.length reports)

let test_stop_oscillating_terminates () =
  (* An adversarial hook teleports the clump back and forth so the
     density (and its overflow) oscillates and the criterion never
     fires; the loop must still terminate at the iteration bound. *)
  let c = small_circuit () in
  let p0 = clumped_placement c in
  let flip = ref false in
  let hooks =
    { Kraftwerk.Placer.no_hooks with
      Kraftwerk.Placer.reweight =
        Some
          (fun st ->
            flip := not !flip;
            let off = if !flip then 12. else -12. in
            let p = st.Kraftwerk.Placer.placement in
            Array.iteri (fun i _ -> p.Netlist.Placement.x.(i) <- 32. +. off)
              p.Netlist.Placement.x) }
  in
  let cfg =
    { Kraftwerk.Config.standard with Kraftwerk.Config.max_iterations = 12 }
  in
  let _, reports = Kraftwerk.Placer.run ~hooks cfg c p0 in
  let n = List.length reports in
  Alcotest.(check bool) "terminates within the bound" true (n >= 1 && n <= 12)

(* --- overflow metric -------------------------------------------------- *)

let test_overflow_ratio_extremes () =
  let c = small_circuit () in
  (* All eight 8x8 cells stacked on the centre: every unit of movable
     area beyond one bin's capacity overflows. *)
  let clumped = Density.Density_map.overflow_ratio c (clumped_placement c) ~nx:8 ~ny:8 in
  let spread = Density.Density_map.overflow_ratio c (spread_placement c) ~nx:8 ~ny:8 in
  (* The centred stack spreads over four bins at occupancy 2.0: exactly
     half the movable area sits above capacity. *)
  Alcotest.(check (float 1e-9)) "clump overflow" 0.5 clumped;
  Alcotest.(check (float 1e-9)) "uniform lattice has no overflow" 0. spread;
  Alcotest.(check bool) "spreading reduces overflow" true (spread < clumped)

let suite =
  [
    Alcotest.test_case "density sums to zero" `Quick test_density_sums_to_zero;
    Alcotest.test_case "density signs" `Quick test_density_positive_at_clump;
    Alcotest.test_case "occupancy values" `Quick test_occupancy_values;
    Alcotest.test_case "extra density rebalances" `Quick test_extra_density_rebalances;
    Alcotest.test_case "extra dimension mismatch" `Quick test_extra_dimension_mismatch;
    Alcotest.test_case "auto bins range" `Quick test_auto_bins_in_range;
    Alcotest.test_case "forces zero for uniform" `Quick test_forces_zero_for_uniform;
    Alcotest.test_case "forces push clump apart" `Quick test_forces_push_clump_apart;
    Alcotest.test_case "force scale bound" `Quick test_forces_scale_bound;
    Alcotest.test_case "fft/direct agree at cells" `Quick test_solver_variants_agree_roughly;
    Alcotest.test_case "stop false when clumped" `Quick test_stop_false_when_clumped;
    Alcotest.test_case "stop true when spread" `Quick test_stop_true_when_spread;
    Alcotest.test_case "empty square monotone" `Quick test_empty_square_monotone;
    Alcotest.test_case "stop: empty circuit" `Quick test_stop_empty_circuit;
    Alcotest.test_case "stop: single cell" `Quick test_stop_single_cell;
    Alcotest.test_case "stop: placer runs single movable exactly once" `Quick
      test_placer_single_movable_one_iteration;
    Alcotest.test_case "stop: placer skips all-fixed circuit" `Quick
      test_placer_all_fixed_zero_iterations;
    Alcotest.test_case "stop: all cells fixed" `Quick test_stop_all_fixed;
    Alcotest.test_case "stop: already-converged run takes no steps" `Quick
      test_stop_already_converged_run;
    Alcotest.test_case "stop: oscillating density still terminates" `Quick
      test_stop_oscillating_terminates;
    Alcotest.test_case "overflow ratio extremes" `Quick
      test_overflow_ratio_extremes;
  ]
