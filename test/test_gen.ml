(* Tests for the synthetic circuit generator and the Table-1 profiles. *)

let generate ?(scale = 0.3) ?(seed = 17) name =
  let prof = Circuitgen.Profiles.find name in
  Circuitgen.Gen.generate (Circuitgen.Profiles.params ~scale prof ~seed)

let test_deterministic () =
  let c1, f1 = generate "primary1" in
  let c2, f2 = generate "primary1" in
  Alcotest.(check int) "cells" (Netlist.Circuit.num_cells c1)
    (Netlist.Circuit.num_cells c2);
  Alcotest.(check int) "nets" (Netlist.Circuit.num_nets c1)
    (Netlist.Circuit.num_nets c2);
  Alcotest.(check bool) "pads equal" true (f1 = f2);
  (* Spot-check net structure equality. *)
  Array.iteri
    (fun i (n : Netlist.Net.t) ->
      Alcotest.(check (list int))
        (Printf.sprintf "net %d" i)
        (Netlist.Net.cells n)
        (Netlist.Net.cells c2.Netlist.Circuit.nets.(i)))
    c1.Netlist.Circuit.nets

let test_seed_changes_netlist () =
  let c1, _ = generate ~seed:1 "fract" in
  let c2, _ = generate ~seed:2 "fract" in
  let cells (c : Netlist.Circuit.t) =
    Array.to_list (Array.map Netlist.Net.cells c.Netlist.Circuit.nets)
  in
  Alcotest.(check bool) "different nets" true (cells c1 <> cells c2)

let test_counts_match_profile () =
  let prof = Circuitgen.Profiles.find "fract" in
  let params = Circuitgen.Profiles.params ~scale:1.0 prof ~seed:3 in
  let c, _ = Circuitgen.Gen.generate params in
  let standard =
    Array.to_list c.Netlist.Circuit.cells
    |> List.filter (fun (cl : Netlist.Cell.t) ->
           cl.Netlist.Cell.kind = Netlist.Cell.Standard)
  in
  Alcotest.(check int) "standard cells" prof.Circuitgen.Profiles.cells
    (List.length standard)

let test_utilization_near_target () =
  let c, _ = generate "struct" in
  let u = Netlist.Circuit.utilization c in
  Alcotest.(check bool) "within 5% of 0.8" true (u > 0.75 && u < 0.85)

let test_pads_on_boundary_and_fixed () =
  let c, fixed = generate "primary1" in
  let region = c.Netlist.Circuit.region in
  List.iter
    (fun (id, (px, py)) ->
      let cl = c.Netlist.Circuit.cells.(id) in
      Alcotest.(check bool) "is pad" true (cl.Netlist.Cell.kind = Netlist.Cell.Pad);
      Alcotest.(check bool) "fixed" true cl.Netlist.Cell.fixed;
      let on_edge =
        Float.abs (px -. region.Geometry.Rect.x_lo) < 1e-9
        || Float.abs (px -. region.Geometry.Rect.x_hi) < 1e-9
        || Float.abs (py -. region.Geometry.Rect.y_lo) < 1e-9
        || Float.abs (py -. region.Geometry.Rect.y_hi) < 1e-9
      in
      Alcotest.(check bool) "on boundary" true on_edge)
    fixed

let test_no_isolated_internal_cells () =
  let c, _ = generate "struct" in
  let connected = Array.make (Netlist.Circuit.num_cells c) false in
  Array.iter
    (fun (n : Netlist.Net.t) ->
      List.iter (fun cid -> connected.(cid) <- true) (Netlist.Net.cells n))
    c.Netlist.Circuit.nets;
  Array.iter
    (fun (cl : Netlist.Cell.t) ->
      if cl.Netlist.Cell.kind <> Netlist.Cell.Pad then
        Alcotest.(check bool)
          (Printf.sprintf "cell %d connected" cl.Netlist.Cell.id)
          true
          connected.(cl.Netlist.Cell.id))
    c.Netlist.Circuit.cells

let test_acyclic_for_sta () =
  let c, fixed = generate "biomed" in
  let p = Circuitgen.Gen.initial_placement c fixed in
  (* Raises on combinational cycles. *)
  let sta = Timing.Sta.analyse Timing.Params.default c p in
  Alcotest.(check bool) "positive delay" true (sta.Timing.Sta.max_delay > 0.)

let test_huge_nets_present_for_avq () =
  let prof = Circuitgen.Profiles.find "avq.small" in
  let params = Circuitgen.Profiles.params ~scale:0.1 prof ~seed:5 in
  let c, _ = Circuitgen.Gen.generate params in
  let huge =
    Array.to_list c.Netlist.Circuit.nets
    |> List.filter (fun n -> Netlist.Net.degree n > 60)
  in
  Alcotest.(check bool) "has > 60-pin nets" true (List.length huge >= 1)

let test_blocks_generated () =
  let prof = Circuitgen.Profiles.find "fract" in
  let params =
    { (Circuitgen.Profiles.params ~scale:1.0 prof ~seed:5) with
      Circuitgen.Gen.num_blocks = 3 }
  in
  let c, _ = Circuitgen.Gen.generate params in
  let blocks =
    Array.to_list c.Netlist.Circuit.cells
    |> List.filter (fun (cl : Netlist.Cell.t) ->
           cl.Netlist.Cell.kind = Netlist.Cell.Block)
  in
  Alcotest.(check int) "three blocks" 3 (List.length blocks);
  List.iter
    (fun (b : Netlist.Cell.t) ->
      Alcotest.(check bool) "multi-row" true
        (b.Netlist.Cell.height >= 2. *. c.Netlist.Circuit.row_height))
    blocks

let test_profiles_complete () =
  Alcotest.(check int) "nine MCNC profiles" 9
    (List.length Circuitgen.Profiles.mcnc);
  Alcotest.(check bool) "mega profiles present" true
    (List.length Circuitgen.Profiles.mega >= 2);
  Alcotest.(check int) "all = mcnc + mega"
    (List.length Circuitgen.Profiles.mcnc
    + List.length Circuitgen.Profiles.mega)
    (List.length Circuitgen.Profiles.all);
  List.iter
    (fun name -> ignore (Circuitgen.Profiles.find name))
    Circuitgen.Profiles.names

let test_find_unknown_raises () =
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Circuitgen.Profiles.find "nonexistent"))

let test_scale_shrinks () =
  let big, _ = generate ~scale:1.0 "primary1" in
  let small, _ = generate ~scale:0.25 "primary1" in
  Alcotest.(check bool) "fewer cells" true
    (Netlist.Circuit.num_cells small < Netlist.Circuit.num_cells big / 2)

let test_driver_has_lowest_index () =
  (* The DAG guarantee: for cell-driven nets, the driver is the member
     with the smallest id. *)
  let c, _ = generate "struct" in
  let n_internal =
    Array.length
      (Array.of_list
         (List.filter
            (fun (cl : Netlist.Cell.t) -> cl.Netlist.Cell.kind <> Netlist.Cell.Pad)
            (Array.to_list c.Netlist.Circuit.cells)))
  in
  Array.iter
    (fun (net : Netlist.Net.t) ->
      let cells = Netlist.Net.cells net in
      let drv = (Netlist.Net.driver net).Netlist.Net.cell in
      if drv < n_internal then
        List.iter
          (fun cid ->
            Alcotest.(check bool) "driver minimal" true (drv <= cid))
          cells)
    c.Netlist.Circuit.nets

let prop_any_profile_seed_generates =
  QCheck.Test.make ~name:"generator succeeds for any profile and seed"
    QCheck.(pair (int_bound 8) small_int)
    (fun (pidx, seed) ->
      let prof = List.nth Circuitgen.Profiles.mcnc pidx in
      let params = Circuitgen.Profiles.params ~scale:0.05 prof ~seed in
      let c, _ = Circuitgen.Gen.generate params in
      Netlist.Circuit.num_cells c > 0 && Netlist.Circuit.num_nets c > 0)

let suite =
  [
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "seed changes netlist" `Quick test_seed_changes_netlist;
    Alcotest.test_case "counts match profile" `Quick test_counts_match_profile;
    Alcotest.test_case "utilization near target" `Quick test_utilization_near_target;
    Alcotest.test_case "pads on boundary" `Quick test_pads_on_boundary_and_fixed;
    Alcotest.test_case "no isolated cells" `Quick test_no_isolated_internal_cells;
    Alcotest.test_case "acyclic for STA" `Quick test_acyclic_for_sta;
    Alcotest.test_case "huge nets for avq" `Quick test_huge_nets_present_for_avq;
    Alcotest.test_case "blocks generated" `Quick test_blocks_generated;
    Alcotest.test_case "profiles complete" `Quick test_profiles_complete;
    Alcotest.test_case "unknown profile" `Quick test_find_unknown_raises;
    Alcotest.test_case "scale shrinks" `Quick test_scale_shrinks;
    Alcotest.test_case "driver lowest index" `Quick test_driver_has_lowest_index;
    QCheck_alcotest.to_alcotest prop_any_profile_seed_generates;
  ]
