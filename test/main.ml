(* Aggregated test runner: one Alcotest suite per library module. *)

let () =
  Alcotest.run "kraftwerk-repro"
    [
      ("numeric.vec", Test_vec.suite);
      ("numeric.sparse", Test_sparse.suite);
      ("numeric.cg", Test_cg.suite);
      ("numeric.fft", Test_fft.suite);
      ("numeric.poisson", Test_poisson.suite);
      ("numeric.rng", Test_rng.suite);
      ("numeric.parallel", Test_parallel.suite);
      ("geometry.rect", Test_rect.suite);
      ("geometry.grid2", Test_grid2.suite);
      ("netlist", Test_netlist.suite);
      ("netlist.io", Test_io.suite);
      ("netlist.bookshelf", Test_bookshelf.suite);
      ("circuitgen", Test_gen.suite);
      ("metrics", Test_metrics.suite);
      ("qp", Test_qp.suite);
      ("qp.b2b", Test_b2b.suite);
      ("density", Test_density.suite);
      ("kraftwerk", Test_placer.suite);
      ("kraftwerk.cluster", Test_cluster.suite);
      ("timing", Test_timing.suite);
      ("timing.paths", Test_paths.suite);
      ("legalize", Test_legalize.suite);
      ("legalize.domino", Test_domino.suite);
      ("baselines", Test_baselines.suite);
      ("route", Test_route.suite);
      ("route.grouter", Test_grouter.suite);
      ("floorplan", Test_floorplan.suite);
      ("floorplan.flexible", Test_flexible.suite);
      ("obs", Test_obs.suite);
      ("engine", Test_engine.suite);
      ("server", Test_server.suite);
      ("convergence", Test_convergence.suite);
      ("effort", Test_effort.suite);
      ("integration", Test_integration.suite);
      ("properties", Test_properties.suite);
      ("validation", Test_validation.suite);
    ]
