(* Tests for the Poisson / force-field solvers, including the oracle
   equivalence between the FFT evaluation and the direct summation of
   the paper's eq. (9). *)

let test_fft_matches_direct () =
  let rows = 6 and cols = 10 in
  let rng = Numeric.Rng.create 7 in
  let density =
    Array.init (rows * cols) (fun _ -> Numeric.Rng.uniform rng (-1.) 1.)
  in
  let d = Numeric.Poisson.direct_force_field ~rows ~cols ~hx:2. ~hy:3. density in
  let f = Numeric.Poisson.fft_force_field ~rows ~cols ~hx:2. ~hy:3. density in
  Alcotest.(check bool) "fx" true
    (Numeric.Vec.max_abs_diff d.Numeric.Poisson.fx f.Numeric.Poisson.fx < 1e-9);
  Alcotest.(check bool) "fy" true
    (Numeric.Vec.max_abs_diff d.Numeric.Poisson.fy f.Numeric.Poisson.fy < 1e-9)

let test_point_source_repels () =
  (* A single positive density bin at the centre: forces point away from
     it everywhere (requirement 2 of §3.2). *)
  let rows = 9 and cols = 9 in
  let density = Array.make (rows * cols) 0. in
  density.((4 * cols) + 4) <- 1.;
  let f = Numeric.Poisson.direct_force_field ~rows ~cols ~hx:1. ~hy:1. density in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if r <> 4 || c <> 4 then begin
        let dx = float_of_int (c - 4) and dy = float_of_int (r - 4) in
        let i = (r * cols) + c in
        let dot =
          (f.Numeric.Poisson.fx.(i) *. dx) +. (f.Numeric.Poisson.fy.(i) *. dy)
        in
        Alcotest.(check bool)
          (Printf.sprintf "outward at (%d,%d)" r c)
          true (dot > 0.)
      end
    done
  done

let test_point_source_symmetry () =
  let rows = 9 and cols = 9 in
  let density = Array.make (rows * cols) 0. in
  density.((4 * cols) + 4) <- 1.;
  let f = Numeric.Poisson.fft_force_field ~rows ~cols ~hx:1. ~hy:1. density in
  (* Mirror symmetry: fx(r, 4+d) = −fx(r, 4−d). *)
  for d = 1 to 4 do
    let left = f.Numeric.Poisson.fx.((4 * cols) + 4 - d) in
    let right = f.Numeric.Poisson.fx.((4 * cols) + 4 + d) in
    Alcotest.(check (float 1e-9)) (Printf.sprintf "mirror %d" d) (-.left) right
  done

let test_negative_density_attracts () =
  let rows = 7 and cols = 7 in
  let density = Array.make (rows * cols) 0. in
  density.((3 * cols) + 3) <- -1.;
  let f = Numeric.Poisson.direct_force_field ~rows ~cols ~hx:1. ~hy:1. density in
  let i = 3 * cols in
  (* At the left edge, the force should point right, toward the sink. *)
  Alcotest.(check bool) "attracted" true (f.Numeric.Poisson.fx.(i) > 0.)

let test_zero_density_zero_force () =
  let f =
    Numeric.Poisson.fft_force_field ~rows:4 ~cols:4 ~hx:1. ~hy:1.
      (Array.make 16 0.)
  in
  Alcotest.(check (float 0.)) "max" 0. (Numeric.Poisson.max_magnitude f)

let test_superposition () =
  let rows = 6 and cols = 6 in
  let d1 = Array.make (rows * cols) 0. and d2 = Array.make (rows * cols) 0. in
  d1.(7) <- 1.;
  d2.(28) <- -0.5;
  let sum = Array.init (rows * cols) (fun i -> d1.(i) +. d2.(i)) in
  let f1 = Numeric.Poisson.fft_force_field ~rows ~cols ~hx:1. ~hy:1. d1 in
  let f2 = Numeric.Poisson.fft_force_field ~rows ~cols ~hx:1. ~hy:1. d2 in
  let fs = Numeric.Poisson.fft_force_field ~rows ~cols ~hx:1. ~hy:1. sum in
  let combined =
    Array.init (rows * cols) (fun i ->
        f1.Numeric.Poisson.fx.(i) +. f2.Numeric.Poisson.fx.(i))
  in
  Alcotest.(check bool) "linear superposition" true
    (Numeric.Vec.max_abs_diff combined fs.Numeric.Poisson.fx < 1e-9)

let test_sor_sign () =
  (* ∇²Φ = D with a positive source: Φ is negative in the interior (pulled
     below the zero boundary), like a membrane pushed down. *)
  let rows = 9 and cols = 9 in
  let density = Array.make (rows * cols) 0. in
  density.((4 * cols) + 4) <- 1.;
  let phi = Numeric.Poisson.sor_potential ~rows ~cols ~hx:1. ~hy:1. density in
  Alcotest.(check bool) "centre below boundary" true (phi.((4 * cols) + 4) < 0.)

let test_sor_gradient_force_outward () =
  let rows = 9 and cols = 9 in
  let density = Array.make (rows * cols) 0. in
  density.((4 * cols) + 4) <- 1.;
  let phi = Numeric.Poisson.sor_potential ~rows ~cols ~hx:1. ~hy:1. density in
  let f = Numeric.Poisson.gradient_force ~rows ~cols ~hx:1. ~hy:1. phi in
  (* f = −∇Φ; next to a positive source Φ has a minimum, so −∇Φ points
     toward the source — the potential convention used by the ablation
     solver is attractive-to-source, i.e. the field D must be negated by
     callers wanting repulsion.  Here we just check the field is
     symmetric and nonzero. *)
  let i_left = (4 * cols) + 2 and i_right = (4 * cols) + 6 in
  Alcotest.(check (float 1e-6)) "antisymmetric"
    (-.f.Numeric.Poisson.fx.(i_left))
    f.Numeric.Poisson.fx.(i_right);
  Alcotest.(check bool) "nonzero" true
    (Float.abs f.Numeric.Poisson.fx.(i_left) > 1e-9)

let test_scale_field () =
  let f =
    {
      Numeric.Poisson.rows = 1;
      cols = 2;
      fx = [| 1.; 2. |];
      fy = [| -1.; 0.5 |];
    }
  in
  Numeric.Poisson.scale_field 2. f;
  Alcotest.(check (float 0.)) "fx" 4. f.Numeric.Poisson.fx.(1);
  Alcotest.(check (float 0.)) "fy" (-2.) f.Numeric.Poisson.fy.(0)

let test_size_mismatch () =
  Alcotest.check_raises "bad size"
    (Invalid_argument "Poisson.fft_force_field: size mismatch") (fun () ->
      ignore (Numeric.Poisson.fft_force_field ~rows:4 ~cols:4 ~hx:1. ~hy:1. (Array.make 3 0.)))

(* ------------------------------------------------------------------ *)
(* Real-transform path: parity with the complex path, ?out, pools      *)

let random_density rng rows cols =
  Array.init (rows * cols) (fun _ -> Numeric.Rng.uniform rng (-2.) 2.)

let fields_close tag a b =
  Alcotest.(check bool) (tag ^ " fx") true
    (Numeric.Vec.max_abs_diff a.Numeric.Poisson.fx b.Numeric.Poisson.fx < 1e-9);
  Alcotest.(check bool) (tag ^ " fy") true
    (Numeric.Vec.max_abs_diff a.Numeric.Poisson.fy b.Numeric.Poisson.fy < 1e-9)

let fields_bitwise tag a b =
  let check plane pa pb =
    Array.iteri
      (fun i v ->
        if Int64.bits_of_float v <> Int64.bits_of_float pb.(i) then
          Alcotest.failf "%s: %s[%d] differs: %h vs %h" tag plane i v pb.(i))
      pa
  in
  check "fx" a.Numeric.Poisson.fx b.Numeric.Poisson.fx;
  check "fy" a.Numeric.Poisson.fy b.Numeric.Poisson.fy

(* The real-transform evaluation and the historical complex-FFT one are
   the same operator computed two ways: they must agree to machine
   precision across grid shapes (non-square, non-power-of-two) and
   anisotropic pitches. *)
let test_real_matches_complex_shapes () =
  let rng = Numeric.Rng.create 42 in
  List.iter
    (fun (rows, cols, hx, hy) ->
      let density = random_density rng rows cols in
      let real = Numeric.Poisson.fft_force_field ~rows ~cols ~hx ~hy density in
      let cplx =
        Numeric.Poisson.fft_force_field_complex ~rows ~cols ~hx ~hy density
      in
      fields_close (Printf.sprintf "%dx%d (%g,%g)" rows cols hx hy) real cplx)
    [
      (5, 5, 1., 1.);
      (6, 10, 2., 3.);
      (17, 3, 0.25, 4.);
      (12, 12, 1.5, 0.75);
      (24, 24, 0.5, 0.5);
      (1, 9, 1., 2.);
    ]

(* [?out] is a pure scratch optimisation: supplying it must not change a
   single bit of the result. *)
let test_out_bitwise_equivalent () =
  let rows = 11 and cols = 7 in
  let rng = Numeric.Rng.create 8 in
  let density = random_density rng rows cols in
  let fresh = Numeric.Poisson.fft_force_field ~rows ~cols ~hx:1.25 ~hy:2. density in
  let out =
    {
      Numeric.Poisson.rows;
      cols;
      fx = Array.make (rows * cols) Float.nan;
      fy = Array.make (rows * cols) Float.nan;
    }
  in
  let reused =
    Numeric.Poisson.fft_force_field ~out ~rows ~cols ~hx:1.25 ~hy:2. density
  in
  fields_bitwise "?out" fresh reused;
  (* And the returned field really is the caller's buffer. *)
  Alcotest.(check bool) "aliases out" true
    (reused.Numeric.Poisson.fx == out.Numeric.Poisson.fx)

(* Results are bitwise-identical for any domain-pool size. *)
let test_real_bitwise_across_pools () =
  let rows = 48 and cols = 48 in
  let rng = Numeric.Rng.create 13 in
  let density = random_density rng rows cols in
  Fun.protect
    ~finally:(fun () -> Numeric.Parallel.set_num_domains 1)
    (fun () ->
      Numeric.Parallel.set_num_domains 1;
      let reference =
        Numeric.Poisson.fft_force_field ~rows ~cols ~hx:1. ~hy:1. density
      in
      List.iter
        (fun pool ->
          Numeric.Parallel.set_num_domains pool;
          let f =
            Numeric.Poisson.fft_force_field ~rows ~cols ~hx:1. ~hy:1. density
          in
          fields_bitwise (Printf.sprintf "pool %d" pool) reference f)
        [ 2; 4 ])

(* The satellite fix under test: a fixed-grid loop hitting the warm
   kernel cache with a caller-supplied [out] must not allocate per call.
   The bound is loose (a few words of boxing are tolerated) but far
   below what any padded-plane allocation would cost (a 48² grid pads to
   96×128 ≥ 10⁴ words per plane). *)
let test_warm_loop_allocation_free () =
  let rows = 48 and cols = 48 in
  let rng = Numeric.Rng.create 21 in
  let density = random_density rng rows cols in
  let out =
    {
      Numeric.Poisson.rows;
      cols;
      fx = Array.make (rows * cols) 0.;
      fy = Array.make (rows * cols) 0.;
    }
  in
  (* Warm the kernel cache and the domain-local workspaces. *)
  ignore (Numeric.Poisson.fft_force_field ~out ~rows ~cols ~hx:1. ~hy:1. density);
  ignore (Numeric.Poisson.fft_force_field ~out ~rows ~cols ~hx:1. ~hy:1. density);
  let calls = 10 in
  let before = Gc.minor_words () in
  for _ = 1 to calls do
    ignore
      (Numeric.Poisson.fft_force_field ~out ~rows ~cols ~hx:1. ~hy:1. density)
  done;
  let per_call = (Gc.minor_words () -. before) /. float_of_int calls in
  Alcotest.(check bool)
    (Printf.sprintf "steady state allocates ~nothing (%.0f words/call)" per_call)
    true (per_call < 2048.)

let prop_real_complex_agree =
  QCheck.Test.make ~name:"real path equals complex path on random grids"
    QCheck.(
      triple (int_range 2 14) (int_range 2 14)
        (pair (float_range 0.3 3.) (float_range 0.3 3.)))
    (fun (rows, cols, (hx, hy)) ->
      let rng = Numeric.Rng.create ((rows * 31) + cols) in
      let density = random_density rng rows cols in
      let real = Numeric.Poisson.fft_force_field ~rows ~cols ~hx ~hy density in
      let cplx =
        Numeric.Poisson.fft_force_field_complex ~rows ~cols ~hx ~hy density
      in
      Numeric.Vec.max_abs_diff real.Numeric.Poisson.fx cplx.Numeric.Poisson.fx
      < 1e-9
      && Numeric.Vec.max_abs_diff real.Numeric.Poisson.fy
           cplx.Numeric.Poisson.fy
         < 1e-9)

let prop_real_direct_agree_pitches =
  QCheck.Test.make ~name:"real path equals direct summation, random pitches"
    QCheck.(
      triple (int_range 2 7) (int_range 2 7)
        (pair (float_range 0.3 3.) (float_range 0.3 3.)))
    (fun (rows, cols, (hx, hy)) ->
      let rng = Numeric.Rng.create ((rows * 17) + cols) in
      let density = random_density rng rows cols in
      let d = Numeric.Poisson.direct_force_field ~rows ~cols ~hx ~hy density in
      let f = Numeric.Poisson.fft_force_field ~rows ~cols ~hx ~hy density in
      Numeric.Vec.max_abs_diff d.Numeric.Poisson.fx f.Numeric.Poisson.fx < 1e-9
      && Numeric.Vec.max_abs_diff d.Numeric.Poisson.fy f.Numeric.Poisson.fy
         < 1e-9)

let prop_fft_direct_agree =
  QCheck.Test.make ~name:"FFT field equals direct summation"
    QCheck.(array_of_size (QCheck.Gen.return 25) (float_range (-2.) 2.))
    (fun density ->
      let d = Numeric.Poisson.direct_force_field ~rows:5 ~cols:5 ~hx:1.5 ~hy:0.5 density in
      let f = Numeric.Poisson.fft_force_field ~rows:5 ~cols:5 ~hx:1.5 ~hy:0.5 density in
      Numeric.Vec.max_abs_diff d.Numeric.Poisson.fx f.Numeric.Poisson.fx < 1e-9
      && Numeric.Vec.max_abs_diff d.Numeric.Poisson.fy f.Numeric.Poisson.fy < 1e-9)

let suite =
  [
    Alcotest.test_case "fft matches direct" `Quick test_fft_matches_direct;
    Alcotest.test_case "point source repels" `Quick test_point_source_repels;
    Alcotest.test_case "point source symmetry" `Quick test_point_source_symmetry;
    Alcotest.test_case "negative density attracts" `Quick test_negative_density_attracts;
    Alcotest.test_case "zero density zero force" `Quick test_zero_density_zero_force;
    Alcotest.test_case "superposition" `Quick test_superposition;
    Alcotest.test_case "sor sign" `Quick test_sor_sign;
    Alcotest.test_case "sor gradient symmetry" `Quick test_sor_gradient_force_outward;
    Alcotest.test_case "scale field" `Quick test_scale_field;
    Alcotest.test_case "size mismatch" `Quick test_size_mismatch;
    Alcotest.test_case "real matches complex across shapes" `Quick
      test_real_matches_complex_shapes;
    Alcotest.test_case "?out is bitwise equivalent" `Quick
      test_out_bitwise_equivalent;
    Alcotest.test_case "real path bitwise across pools" `Quick
      test_real_bitwise_across_pools;
    Alcotest.test_case "warm fixed-grid loop is allocation-free" `Quick
      test_warm_loop_allocation_free;
    QCheck_alcotest.to_alcotest prop_real_complex_agree;
    QCheck_alcotest.to_alcotest prop_real_direct_agree_pitches;
    QCheck_alcotest.to_alcotest prop_fft_direct_agree;
  ]
