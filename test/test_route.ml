(* Tests for congestion estimation, grid specs, congestion-target maps
   and the heat model. *)

let spec8 = Route.Grid_spec.make ~nx:8 ~ny:8 ()

let est_ok = function
  | Ok e -> e
  | Error e -> Alcotest.fail (Route.Grid_spec.error_message e)

let pin c = { Netlist.Net.cell = c; dx = 0.; dy = 0. }

let region = Geometry.Rect.make ~x_lo:0. ~y_lo:0. ~x_hi:64. ~y_hi:64.

let circuit_of ?(powers = [||]) cells_spec nets_spec =
  let cells =
    Array.mapi
      (fun i (w, h) ->
        let power = if i < Array.length powers then Some powers.(i) else None in
        Netlist.Cell.make ~id:i ~name:(Printf.sprintf "c%d" i) ~width:w
          ~height:h ?power ())
      cells_spec
  in
  let nets =
    Array.mapi
      (fun i members ->
        Netlist.Net.make ~id:i ~name:(Printf.sprintf "n%d" i)
          (Array.map pin members))
      nets_spec
  in
  Netlist.Circuit.make ~name:"r" ~cells ~nets ~region ~row_height:8.

let test_demand_proportional_to_bbox () =
  let c = circuit_of [| (4., 4.); (4., 4.) |] [| [| 0; 1 |] |] in
  let p = { Netlist.Placement.x = [| 8.; 56. |]; y = [| 32.; 32. |] } in
  let est = est_ok (Route.Congest.estimate c p spec8) in
  (* Horizontal demand totals bbox width × via factor (spread over bins). *)
  let total_h = Geometry.Grid2.total est.Route.Congest.demand_h in
  Alcotest.(check (float 1e-6)) "h demand" (48. *. 1.2) total_h;
  (* Degenerate vertical span: no v demand. *)
  Alcotest.(check (float 1e-6)) "v demand" 0.
    (Geometry.Grid2.total est.Route.Congest.demand_v)

let test_no_overflow_for_sparse_design () =
  let c = circuit_of [| (4., 4.); (4., 4.) |] [| [| 0; 1 |] |] in
  let p = { Netlist.Placement.x = [| 8.; 56. |]; y = [| 30.; 34. |] } in
  let est = est_ok (Route.Congest.estimate c p spec8) in
  Alcotest.(check (float 0.)) "no overflow" 0. est.Route.Congest.total_overflow

let test_overflow_when_many_nets_cross_one_bin () =
  (* 120 two-pin nets all crossing the same thin channel overflow it. *)
  let n = 40 in
  let cells = Array.init (2 * n) (fun _ -> (2., 2.)) in
  let nets = Array.init n (fun i -> [| i; n + i |]) in
  let c = circuit_of cells nets in
  let p =
    {
      Netlist.Placement.x =
        Array.init (2 * n) (fun i -> if i < n then 4. else 60.);
      y = Array.init (2 * n) (fun _ -> 32.);
    }
  in
  let est = est_ok (Route.Congest.estimate c p spec8) in
  Alcotest.(check bool) "overflows" true (est.Route.Congest.total_overflow > 0.);
  Alcotest.(check bool) "max ≤ total" true
    (est.Route.Congest.max_overflow <= est.Route.Congest.total_overflow +. 1e-9)

let test_extra_density_none_when_clean () =
  let c = circuit_of [| (4., 4.); (4., 4.) |] [| [| 0; 1 |] |] in
  let p = { Netlist.Placement.x = [| 8.; 56. |]; y = [| 30.; 34. |] } in
  Alcotest.(check bool) "no hook output" true
    (Route.Congest.extra_density ~strength:1. c p spec8 = Ok None)

let test_extra_density_bounded_by_bin_area () =
  let n = 40 in
  let cells = Array.init (2 * n) (fun _ -> (2., 2.)) in
  let nets = Array.init n (fun i -> [| i; n + i |]) in
  let c = circuit_of cells nets in
  let p =
    {
      Netlist.Placement.x = Array.init (2 * n) (fun i -> if i < n then 4. else 60.);
      y = Array.init (2 * n) (fun _ -> 32.);
    }
  in
  match Route.Congest.extra_density ~strength:10. c p spec8 with
  | Error e -> Alcotest.fail (Route.Grid_spec.error_message e)
  | Ok None -> Alcotest.fail "expected congestion"
  | Ok (Some g) ->
    let bin_area = Geometry.Grid2.dx g *. Geometry.Grid2.dy g in
    Geometry.Grid2.fold
      (fun () _ _ v ->
        Alcotest.(check bool) "≤ bin area" true (v <= bin_area +. 1e-9))
      () g

(* --- grid specs: degenerate grids are typed errors, not NaN --- *)

let test_grid_spec_zero_bins () =
  let c = circuit_of [| (4., 4.); (4., 4.) |] [| [| 0; 1 |] |] in
  let p = { Netlist.Placement.x = [| 8.; 56. |]; y = [| 32.; 32. |] } in
  (match Route.Congest.estimate c p (Route.Grid_spec.make ~nx:0 ~ny:8 ()) with
  | Error Route.Grid_spec.Zero_bins -> ()
  | Error _ -> Alcotest.fail "wrong error"
  | Ok _ -> Alcotest.fail "expected Zero_bins");
  match Route.Grouter.route c p (Route.Grid_spec.make ~nx:8 ~ny:0 ()) with
  | Error Route.Grid_spec.Zero_bins -> ()
  | Error _ -> Alcotest.fail "wrong error"
  | Ok _ -> Alcotest.fail "expected Zero_bins"

let test_grid_spec_zero_capacity () =
  let c = circuit_of [| (4., 4.); (4., 4.) |] [| [| 0; 1 |] |] in
  let p = { Netlist.Placement.x = [| 8.; 56. |]; y = [| 32.; 32. |] } in
  (* A non-positive wire pitch can produce no finite track capacity. *)
  let bad = Route.Grid_spec.make ~wire_pitch:0. ~nx:8 ~ny:8 () in
  (match Route.Congest.estimate c p bad with
  | Error Route.Grid_spec.Zero_capacity -> ()
  | Error _ -> Alcotest.fail "wrong error"
  | Ok _ -> Alcotest.fail "expected Zero_capacity");
  match Route.Grouter.route c p bad with
  | Error Route.Grid_spec.Zero_capacity -> ()
  | Error _ -> Alcotest.fail "wrong error"
  | Ok _ -> Alcotest.fail "expected Zero_capacity"

(* --- congestion-target maps --- *)

let crowded_circuit () =
  let n = 40 in
  let cells = Array.init (2 * n) (fun _ -> (2., 2.)) in
  let nets = Array.init n (fun i -> [| i; n + i |]) in
  let c = circuit_of cells nets in
  let p =
    {
      Netlist.Placement.x =
        Array.init (2 * n) (fun i -> if i < n then 4. else 60.);
      y = Array.init (2 * n) (fun _ -> 32.);
    }
  in
  (c, p)

let test_target_accumulates_and_decays () =
  let c, p = crowded_circuit () in
  let t =
    match Route.Target.create region spec8 with
    | Ok t -> t
    | Error e -> Alcotest.fail (Route.Grid_spec.error_message e)
  in
  Alcotest.(check (float 0.)) "starts empty" 0. (Route.Target.area t);
  let s1 = Route.Target.refresh ~strength:0.5 ~decay:0.5 t c p in
  Alcotest.(check bool) "observes overflow" true
    (s1.Route.Target.est_total_overflow > 0.);
  let a1 = Route.Target.area t in
  Alcotest.(check bool) "claims area" true (a1 > 0.);
  (* Same placement again: decayed old target + fresh overflow ≥ first. *)
  let s2 = Route.Target.refresh ~strength:0.5 ~decay:0.5 t c p in
  Alcotest.(check bool) "persists" true
    (Route.Target.area t >= a1 -. 1e-9 && s2.Route.Target.target_area > 0.)

let test_target_clamped_at_bin_area () =
  let c, p = crowded_circuit () in
  let t =
    match Route.Target.create region spec8 with
    | Ok t -> t
    | Error e -> Alcotest.fail (Route.Grid_spec.error_message e)
  in
  let s = Route.Target.refresh ~strength:1e6 ~decay:0.5 t c p in
  Alcotest.(check bool) "clamp fires" true (s.Route.Target.clamped_bins > 0);
  let g = Route.Target.grid t in
  let bin_area = Geometry.Grid2.dx g *. Geometry.Grid2.dy g in
  Geometry.Grid2.fold
    (fun () _ _ v ->
      Alcotest.(check bool) "≤ bin area" true (v <= bin_area +. 1e-9))
    () g

let test_target_restore_bitwise () =
  let c, p = crowded_circuit () in
  let t =
    match Route.Target.create region spec8 with
    | Ok t -> t
    | Error e -> Alcotest.fail (Route.Grid_spec.error_message e)
  in
  ignore (Route.Target.refresh ~strength:0.7 ~decay:0.5 t c p);
  let values = Route.Target.values t in
  match Route.Target.restore region spec8 ~values with
  | Error msg -> Alcotest.fail msg
  | Ok t' ->
    Alcotest.(check bool) "values bitwise" true
      (Route.Target.values t' = values);
    Alcotest.(check bool) "area recomputed" true
      (Route.Target.area t' = Route.Target.area t)

(* --- heat --- *)

let test_heat_peak_at_power_source () =
  let c =
    circuit_of ~powers:[| 1.0; 0. |] [| (8., 8.); (8., 8.) |] [| [| 0; 1 |] |]
  in
  let p = { Netlist.Placement.x = [| 32.; 8. |]; y = [| 32.; 8. |] } in
  let t = Route.Heat.analyse c p ~nx:16 ~ny:16 in
  Alcotest.(check bool) "positive peak" true (t.Route.Heat.peak > 0.);
  (* The hottest bin is where the powered cell sits. *)
  let ix, iy = Geometry.Grid2.locate t.Route.Heat.temperature 32. 32. in
  Alcotest.(check (float 1e-9)) "peak at source" t.Route.Heat.peak
    (Geometry.Grid2.get t.Route.Heat.temperature ix iy)

let test_heat_spreading_reduces_peak () =
  let powers = Array.make 4 0.5 in
  let c =
    circuit_of ~powers
      [| (8., 8.); (8., 8.); (8., 8.); (8., 8.) |]
      [| [| 0; 1; 2; 3 |] |]
  in
  let clumped =
    { Netlist.Placement.x = [| 30.; 34.; 30.; 34. |]; y = [| 30.; 30.; 34.; 34. |] }
  in
  let spread =
    { Netlist.Placement.x = [| 12.; 52.; 12.; 52. |]; y = [| 12.; 12.; 52.; 52. |] }
  in
  let t_clumped = Route.Heat.analyse c clumped ~nx:16 ~ny:16 in
  let t_spread = Route.Heat.analyse c spread ~nx:16 ~ny:16 in
  Alcotest.(check bool) "spreading cools" true
    (t_spread.Route.Heat.peak < t_clumped.Route.Heat.peak)

let test_heat_power_conserved () =
  let c = circuit_of ~powers:[| 0.7; 0.3 |] [| (8., 8.); (8., 8.) |] [| [| 0; 1 |] |] in
  let p = { Netlist.Placement.x = [| 20.; 44. |]; y = [| 32.; 32. |] } in
  let t = Route.Heat.analyse c p ~nx:16 ~ny:16 in
  Alcotest.(check (float 1e-9)) "total power" 1.
    (Geometry.Grid2.total t.Route.Heat.power)

let test_heat_extra_density_targets_hotspot () =
  let c =
    circuit_of ~powers:[| 1.0; 0. |] [| (8., 8.); (8., 8.) |] [| [| 0; 1 |] |]
  in
  let p = { Netlist.Placement.x = [| 32.; 8. |]; y = [| 32.; 8. |] } in
  match Route.Heat.extra_density ~strength:1. c p ~nx:16 ~ny:16 with
  | None -> Alcotest.fail "expected heat"
  | Some g ->
    let ix, iy = Geometry.Grid2.locate g 32. 32. in
    let hot = Geometry.Grid2.get g ix iy in
    let cold = Geometry.Grid2.get g 0 0 in
    Alcotest.(check bool) "hotspot demands more" true (hot > cold)

let suite =
  [
    Alcotest.test_case "demand from bbox" `Quick test_demand_proportional_to_bbox;
    Alcotest.test_case "no overflow sparse" `Quick test_no_overflow_for_sparse_design;
    Alcotest.test_case "overflow when crowded" `Quick test_overflow_when_many_nets_cross_one_bin;
    Alcotest.test_case "hook none when clean" `Quick test_extra_density_none_when_clean;
    Alcotest.test_case "hook bounded" `Quick test_extra_density_bounded_by_bin_area;
    Alcotest.test_case "grid spec: zero bins" `Quick test_grid_spec_zero_bins;
    Alcotest.test_case "grid spec: zero capacity" `Quick
      test_grid_spec_zero_capacity;
    Alcotest.test_case "target: accumulates and decays" `Quick
      test_target_accumulates_and_decays;
    Alcotest.test_case "target: clamped at bin area" `Quick
      test_target_clamped_at_bin_area;
    Alcotest.test_case "target: restore bitwise" `Quick
      test_target_restore_bitwise;
    Alcotest.test_case "heat peak at source" `Quick test_heat_peak_at_power_source;
    Alcotest.test_case "heat spreading cools" `Quick test_heat_spreading_reduces_peak;
    Alcotest.test_case "heat power conserved" `Quick test_heat_power_conserved;
    Alcotest.test_case "heat hook targets hotspot" `Quick test_heat_extra_density_targets_hotspot;
  ]
