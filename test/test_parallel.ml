(* Tests for the Numeric.Parallel domain pool and for the bitwise
   determinism of every kernel routed through it: the same inputs must
   produce bit-for-bit identical outputs whether the pool has 1, 2 or 4
   domains, and the pooled paths must match the historical sequential
   code exactly. *)

let check_bitwise name a b =
  Alcotest.(check int) (name ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then
        Alcotest.failf "%s: element %d differs: %h vs %h" name i x b.(i))
    a

(* Every test leaves the pool at size 1 so the rest of the suite keeps
   the historical sequential behaviour. *)
let with_domains n f =
  Numeric.Parallel.set_num_domains n;
  Fun.protect ~finally:(fun () -> Numeric.Parallel.set_num_domains 1) f

let domain_counts = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Pool combinators                                                    *)

let test_parallel_for_covers_range () =
  List.iter
    (fun d ->
      with_domains d (fun () ->
          List.iter
            (fun n ->
              let hits = Array.make n 0 in
              Numeric.Parallel.parallel_for ~chunk:7 ~lo:0 ~hi:n (fun i ->
                  hits.(i) <- hits.(i) + 1);
              Array.iteri
                (fun i h ->
                  if h <> 1 then
                    Alcotest.failf "d=%d n=%d: index %d visited %d times" d n
                      i h)
                hits)
            [ 0; 1; 6; 7; 8; 100; 1023 ]))
    domain_counts

let test_parallel_map2 () =
  let a = Array.init 5000 (fun i -> float_of_int i) in
  let b = Array.init 5000 (fun i -> float_of_int (i * i) /. 3.) in
  let expected = Array.map2 (fun x y -> (2. *. x) -. y) a b in
  List.iter
    (fun d ->
      with_domains d (fun () ->
          let got =
            Numeric.Parallel.parallel_map2 ~chunk:256
              (fun x y -> (2. *. x) -. y)
              a b
          in
          check_bitwise (Printf.sprintf "map2 d=%d" d) expected got))
    domain_counts;
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Parallel.parallel_map2: length mismatch") (fun () ->
      ignore (Numeric.Parallel.parallel_map2 (fun x _ -> x) a (Array.make 3 0.)))

let test_both () =
  List.iter
    (fun d ->
      with_domains d (fun () ->
          let x, y =
            Numeric.Parallel.both (fun () -> 6 * 7) (fun () -> "forty-two")
          in
          Alcotest.(check int) "left" 42 x;
          Alcotest.(check string) "right" "forty-two" y))
    domain_counts

let test_both_propagates_exceptions () =
  List.iter
    (fun d ->
      with_domains d (fun () ->
          Alcotest.check_raises "left raises" (Failure "boom") (fun () ->
              ignore
                (Numeric.Parallel.both
                   (fun () -> failwith "boom")
                   (fun () -> 1)));
          (* The pool must survive an exception and keep working. *)
          let x, y = Numeric.Parallel.both (fun () -> 1) (fun () -> 2) in
          Alcotest.(check (pair int int)) "alive after exn" (1, 2) (x, y)))
    domain_counts

let test_set_num_domains_validates () =
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Parallel.set_num_domains: need at least one domain")
    (fun () -> Numeric.Parallel.set_num_domains 0)

let test_env_variable () =
  let saved = Sys.getenv_opt "KRAFTWERK_DOMAINS" in
  Fun.protect
    ~finally:(fun () ->
      (match saved with
      | Some v -> Unix.putenv "KRAFTWERK_DOMAINS" v
      | None -> Unix.putenv "KRAFTWERK_DOMAINS" "");
      Numeric.Parallel.set_num_domains 1)
    (fun () ->
      Unix.putenv "KRAFTWERK_DOMAINS" "3";
      Numeric.Parallel.reset ();
      Alcotest.(check int) "env respected" 3 (Numeric.Parallel.num_domains ());
      Unix.putenv "KRAFTWERK_DOMAINS" "1";
      Numeric.Parallel.reset ();
      Alcotest.(check int) "env=1 sequential" 1
        (Numeric.Parallel.num_domains ()))

(* ------------------------------------------------------------------ *)
(* SpMV determinism                                                    *)

let random_spd_matrix rng n =
  let b = Numeric.Sparse.builder n in
  for i = 0 to n - 1 do
    Numeric.Sparse.add_diag b i (10. +. Numeric.Rng.uniform rng 0. 1.);
    for _ = 0 to 3 do
      let j = Numeric.Rng.int rng n in
      if j <> i then
        Numeric.Sparse.add_sym b i j (Numeric.Rng.uniform rng (-1.) 1.)
    done
  done;
  Numeric.Sparse.finalize b

let test_spmv_bitwise () =
  let rng = Numeric.Rng.create 77 in
  (* 777 rows clears the SpMV parallel threshold (512). *)
  let m = random_spd_matrix rng 777 in
  let x = Array.init 777 (fun i -> Numeric.Rng.uniform rng (-1.) 1. +. float_of_int i) in
  let y_ref = Array.make 777 0. in
  Numeric.Sparse.mul_seq m x y_ref;
  List.iter
    (fun d ->
      with_domains d (fun () ->
          let y = Array.make 777 nan in
          Numeric.Sparse.mul m x y;
          check_bitwise (Printf.sprintf "spmv d=%d" d) y_ref y))
    domain_counts

(* ------------------------------------------------------------------ *)
(* FFT determinism                                                     *)

let test_transform2_bitwise () =
  let rng = Numeric.Rng.create 5 in
  (* 64×64 = 4096 clears the transform2 parallel threshold. *)
  let n = 64 * 64 in
  let re0 = Array.init n (fun _ -> Numeric.Rng.uniform rng (-1.) 1.) in
  let im0 = Array.init n (fun _ -> Numeric.Rng.uniform rng (-1.) 1.) in
  let run () =
    let re = Array.copy re0 and im = Array.copy im0 in
    Numeric.Fft.transform2 ~inverse:false ~rows:64 ~cols:64 re im;
    Numeric.Fft.transform2 ~inverse:true ~rows:64 ~cols:64 re im;
    (re, im)
  in
  let re_ref, im_ref = with_domains 1 run in
  List.iter
    (fun d ->
      with_domains d (fun () ->
          let re, im = run () in
          check_bitwise (Printf.sprintf "fft re d=%d" d) re_ref re;
          check_bitwise (Printf.sprintf "fft im d=%d" d) im_ref im))
    domain_counts

(* The pre-cache force-field evaluation: pad, build the offset-indexed
   kernels, and run two independent real cyclic convolutions.  The
   production path now shares one forward FFT of the density and caches
   the kernel spectra; this reference pins that it still computes the
   exact same floats. *)
let reference_fft_force_field ~rows ~cols ~hx ~hy density =
  let prows = Numeric.Fft.next_pow2 (2 * rows) in
  let pcols = Numeric.Fft.next_pow2 (2 * cols) in
  let n = prows * pcols in
  let pd = Array.make n 0. in
  for r = 0 to rows - 1 do
    Array.blit density (r * cols) pd (r * pcols) cols
  done;
  let kx = Array.make n 0. and ky = Array.make n 0. in
  let cell_area = hx *. hy in
  let two_pi = 2. *. Float.pi in
  for dr = -(rows - 1) to rows - 1 do
    for dc = -(cols - 1) to cols - 1 do
      if dr <> 0 || dc <> 0 then begin
        let dx = float_of_int dc *. hx in
        let dy = float_of_int dr *. hy in
        let r2 = (dx *. dx) +. (dy *. dy) in
        let idx_r = if dr >= 0 then dr else prows + dr in
        let idx_c = if dc >= 0 then dc else pcols + dc in
        let i = (idx_r * pcols) + idx_c in
        kx.(i) <- dx /. r2 *. cell_area /. two_pi;
        ky.(i) <- dy /. r2 *. cell_area /. two_pi
      end
    done
  done;
  let conv_x = Numeric.Fft.convolve2 ~rows:prows ~cols:pcols pd kx in
  let conv_y = Numeric.Fft.convolve2 ~rows:prows ~cols:pcols pd ky in
  let fx = Array.make (rows * cols) 0. in
  let fy = Array.make (rows * cols) 0. in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      fx.((r * cols) + c) <- conv_x.((r * pcols) + c);
      fy.((r * cols) + c) <- conv_y.((r * pcols) + c)
    done
  done;
  (fx, fy)

let test_force_field_bitwise () =
  let rng = Numeric.Rng.create 11 in
  List.iter
    (fun (rows, cols) ->
      let density =
        Array.init (rows * cols) (fun _ -> Numeric.Rng.uniform rng (-2.) 2.)
      in
      let fx_ref, fy_ref =
        with_domains 1 (fun () ->
            reference_fft_force_field ~rows ~cols ~hx:1.5 ~hy:0.75 density)
      in
      List.iter
        (fun d ->
          with_domains d (fun () ->
              Numeric.Poisson.clear_kernel_cache ();
              (* The complex path is the bitwise-pinned historical
                 algorithm; the real-transform [fft_force_field] has its
                 own determinism and tolerance pins in test_poisson. *)
              let cold =
                Numeric.Poisson.fft_force_field_complex ~rows ~cols ~hx:1.5
                  ~hy:0.75 density
              in
              let warm =
                Numeric.Poisson.fft_force_field_complex ~rows ~cols ~hx:1.5
                  ~hy:0.75 density
              in
              let tag s =
                Printf.sprintf "%dx%d d=%d %s" rows cols d s
              in
              check_bitwise (tag "cold fx") fx_ref cold.Numeric.Poisson.fx;
              check_bitwise (tag "cold fy") fy_ref cold.Numeric.Poisson.fy;
              check_bitwise (tag "warm fx") fx_ref warm.Numeric.Poisson.fx;
              check_bitwise (tag "warm fy") fy_ref warm.Numeric.Poisson.fy;
              let hits, misses = Numeric.Poisson.kernel_cache_stats () in
              Alcotest.(check (pair int int))
                (tag "cache stats") (1, 1) (hits, misses)))
        domain_counts)
    [ (7, 13); (17, 29) ]

(* ------------------------------------------------------------------ *)
(* Whole-placer determinism                                            *)

let test_placer_trajectory_bitwise () =
  let prof = Circuitgen.Profiles.find "fract" in
  let circuit, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params ~scale:1.0 prof ~seed:21)
  in
  let p0 = Circuitgen.Gen.initial_placement circuit pads in
  let config =
    { Kraftwerk.Config.standard with Kraftwerk.Config.max_iterations = 15 }
  in
  let run domains =
    let state, reports =
      Kraftwerk.Placer.run
        { config with Kraftwerk.Config.domains = Some domains }
        circuit p0
    in
    ( Array.of_list (List.map (fun r -> r.Kraftwerk.Placer.hpwl) reports),
      state.Kraftwerk.Placer.placement )
  in
  Fun.protect
    ~finally:(fun () -> Numeric.Parallel.set_num_domains 1)
    (fun () ->
      let traj1, p1 = run 1 in
      let traj4, p4 = run 4 in
      Alcotest.(check bool) "took steps" true (Array.length traj1 > 0);
      check_bitwise "hpwl trajectory" traj1 traj4;
      check_bitwise "final x" p1.Netlist.Placement.x p4.Netlist.Placement.x;
      check_bitwise "final y" p1.Netlist.Placement.y p4.Netlist.Placement.y)

(* The full telemetry trace — not just the HPWL trajectory — must be
   bitwise identical for any pool size once the volatile fields
   (timings, pool facts) are stripped: every recorded metric comes out
   of kernels that are deterministic across domain counts. *)
let test_telemetry_trace_bitwise () =
  let prof = Circuitgen.Profiles.find "fract" in
  let circuit, pads =
    Circuitgen.Gen.generate (Circuitgen.Profiles.params ~scale:1.0 prof ~seed:21)
  in
  let p0 = Circuitgen.Gen.initial_placement circuit pads in
  let config =
    { Kraftwerk.Config.standard with Kraftwerk.Config.max_iterations = 10 }
  in
  let run domains =
    (* The kernel-spectrum cache persists across runs in one process;
       clear it so cache hit/miss records match between runs too. *)
    Numeric.Poisson.clear_kernel_cache ();
    let sink, read = Obs.Sink.collecting () in
    Obs.Sink.with_sink sink (fun () ->
        ignore
          (Kraftwerk.Placer.run
             { config with Kraftwerk.Config.domains = Some domains }
             circuit p0));
    let records, _ = read () in
    List.map
      (fun r ->
        Obs.Json.to_string
          (Obs.Telemetry.strip_volatile (Obs.Telemetry.iteration_to_json r)))
      records
  in
  Fun.protect
    ~finally:(fun () -> Numeric.Parallel.set_num_domains 1)
    (fun () ->
      let reference = run 1 in
      Alcotest.(check bool) "collected records" true (reference <> []);
      List.iter
        (fun d ->
          Alcotest.(check (list string))
            (Printf.sprintf "telemetry trace d=%d" d)
            reference (run d))
        [ 2; 4 ])

let suite =
  [
    Alcotest.test_case "parallel_for covers range" `Quick
      test_parallel_for_covers_range;
    Alcotest.test_case "parallel_map2" `Quick test_parallel_map2;
    Alcotest.test_case "both" `Quick test_both;
    Alcotest.test_case "both propagates exceptions" `Quick
      test_both_propagates_exceptions;
    Alcotest.test_case "set_num_domains validates" `Quick
      test_set_num_domains_validates;
    Alcotest.test_case "KRAFTWERK_DOMAINS env" `Quick test_env_variable;
    Alcotest.test_case "SpMV bitwise across domains" `Quick test_spmv_bitwise;
    Alcotest.test_case "transform2 bitwise across domains" `Quick
      test_transform2_bitwise;
    Alcotest.test_case "force field bitwise vs pre-cache path" `Quick
      test_force_field_bitwise;
    Alcotest.test_case "placer trajectory bitwise across domains" `Slow
      test_placer_trajectory_bitwise;
    Alcotest.test_case "telemetry trace bitwise across domains" `Slow
      test_telemetry_trace_bitwise;
  ]
