(* Experiment harness: regenerates every table of the paper's evaluation
   and the in-text studies, plus bechamel micro-benchmarks of the
   numerical kernels.

     dune exec bench/main.exe                 # everything (takes a while)
     dune exec bench/main.exe -- --table 1    # one table
     dune exec bench/main.exe -- --experiment eco
     dune exec bench/main.exe -- --scale 0.25 # shrink circuits for speed
     dune exec bench/main.exe -- --micro      # bechamel kernels only

   The experiment ids (E1..E10, A1..A3) are indexed in DESIGN.md; the
   paper-vs-measured discussion lives in EXPERIMENTS.md. *)

let scale = ref 1.0

let seed = ref 42

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Stamp machine-readable outputs with the git revision so perf
   trajectories are attributable to a commit. *)
let git_revision () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

(* ------------------------------------------------------------------ *)
(* Shared flow pieces                                                  *)

let build_profile name =
  let prof = Circuitgen.Profiles.find name in
  let params = Circuitgen.Profiles.params ~scale:!scale prof ~seed:!seed in
  let circuit, pads = Circuitgen.Gen.generate params in
  (prof, circuit, Circuitgen.Gen.initial_placement circuit pads)

(* The common final placement applied to every flow's global placement:
   Abacus legalisation, swap/slide improvement, then the Domino-like
   network-flow detailed placement (the same role Domino plays in the
   paper's reported results). *)
let finalize circuit global =
  let rep = Legalize.Abacus.legalize circuit global () in
  let p = rep.Legalize.Abacus.placement in
  ignore (Legalize.Improve.run circuit p);
  ignore (Legalize.Domino.run circuit p);
  p

(* Annealer budgets shrink on the biggest circuits so the harness stays
   laptop-scale; the CPU column reports what was actually spent. *)
let annealer_config circuit =
  let n = Netlist.Circuit.num_movable circuit in
  let base = Baselines.Annealer.default_config in
  if n > 18_000 then { base with Baselines.Annealer.moves_per_cell = 4 }
  else if n > 9_000 then { base with Baselines.Annealer.moves_per_cell = 6 }
  else base

type flow_result = { wl : float; cpu : float }

let run_kraftwerk ?(config = Kraftwerk.Config.standard) circuit p0 =
  let (global, cpu) =
    time (fun () ->
        let state, _ = Kraftwerk.Placer.run config circuit p0 in
        state.Kraftwerk.Placer.placement)
  in
  { wl = Metrics.Wirelength.hpwl circuit (finalize circuit global); cpu }

let run_gordian circuit p0 =
  let (global, cpu) = time (fun () -> fst (Baselines.Gordian.place circuit p0)) in
  { wl = Metrics.Wirelength.hpwl circuit (finalize circuit global); cpu }

let run_annealer circuit p0 =
  let config = annealer_config circuit in
  let (global, cpu) =
    time (fun () -> fst (Baselines.Annealer.place ~config circuit p0))
  in
  { wl = Metrics.Wirelength.hpwl circuit (finalize circuit global); cpu }

(* ------------------------------------------------------------------ *)
(* Tables 1 and 2: wire length and CPU across the nine circuits        *)

type t1_row = {
  name : string;
  cells : int;
  nets : int;
  rows : int;
  annealer : flow_result;
  gordian : flow_result;
  ours : flow_result;
}

let table1_rows = ref ([] : t1_row list)

let compute_table1 () =
  if !table1_rows = [] then
    table1_rows :=
      List.map
        (fun (prof : Circuitgen.Profiles.t) ->
          let name = prof.Circuitgen.Profiles.profile_name in
          let _, circuit, p0 = build_profile name in
          Printf.eprintf "[table1] %s (%d cells)...\n%!" name
            (Netlist.Circuit.num_cells circuit);
          {
            name;
            cells = Netlist.Circuit.num_cells circuit;
            nets = Netlist.Circuit.num_nets circuit;
            rows = Netlist.Circuit.num_rows circuit;
            annealer = run_annealer circuit p0;
            gordian = run_gordian circuit p0;
            ours = run_kraftwerk circuit p0;
          })
        Circuitgen.Profiles.mcnc;
  !table1_rows

let table1 () =
  let rows = compute_table1 () in
  print_endline "";
  print_endline
    "Table 1: wire length (HPWL, length units) and CPU (s) — legalised results";
  Printf.printf "%-11s %7s %7s %5s | %12s %8s | %12s %8s | %12s %8s\n" "circuit"
    "#cells" "#nets" "#rows" "SA wl" "SA cpu" "Gordian wl" "Go cpu" "Ours wl"
    "Ours cpu";
  List.iter
    (fun r ->
      Printf.printf "%-11s %7d %7d %5d | %12.4g %8.1f | %12.4g %8.1f | %12.4g %8.1f\n"
        r.name r.cells r.nets r.rows r.annealer.wl r.annealer.cpu r.gordian.wl
        r.gordian.cpu r.ours.wl r.ours.cpu)
    rows

let table2 () =
  let rows = compute_table1 () in
  print_endline "";
  print_endline
    "Table 2: wire-length improvement of our approach (positive = ours better)";
  Printf.printf "%-11s | %12s %9s | %12s %9s\n" "circuit" "vs SA %" "rel CPU"
    "vs Gordian %" "rel CPU";
  let acc_sa = ref 0. and acc_go = ref 0. and n = ref 0 in
  List.iter
    (fun r ->
      let imp_sa = 100. *. (r.annealer.wl -. r.ours.wl) /. r.annealer.wl in
      let imp_go = 100. *. (r.gordian.wl -. r.ours.wl) /. r.gordian.wl in
      acc_sa := !acc_sa +. imp_sa;
      acc_go := !acc_go +. imp_go;
      incr n;
      Printf.printf "%-11s | %12.1f %9.2f | %12.1f %9.2f\n" r.name imp_sa
        (r.ours.cpu /. Float.max r.annealer.cpu 1e-9)
        imp_go
        (r.ours.cpu /. Float.max r.gordian.cpu 1e-9))
    rows;
  Printf.printf "%-11s | %12.1f %9s | %12.1f %9s\n" "average"
    (!acc_sa /. float_of_int !n) "" (!acc_go /. float_of_int !n) "";
  (* Shape comparison against the paper's published ratios: the absolute
     wire lengths are not comparable (synthetic circuits), but the
     ours/baseline ratio is. *)
  print_endline "";
  print_endline
    "Paper-vs-measured shape: wire-length ratio ours/baseline (< 1 = ours wins)";
  Printf.printf "%-11s | %10s %10s | %10s %10s\n" "circuit" "paper o/TW"
    "meas o/SA" "paper o/Go" "meas o/Go";
  List.iter
    (fun r ->
      let prof = Circuitgen.Profiles.find r.name in
      let paper = prof.Circuitgen.Profiles.paper in
      let fmt_ratio num den =
        match (num, den) with
        | Some a, Some b when b > 0. -> Printf.sprintf "%10.2f" (a /. b)
        | _ -> Printf.sprintf "%10s" "-"
      in
      Printf.printf "%-11s | %s %10.2f | %s %10.2f\n" r.name
        (fmt_ratio paper.Circuitgen.Profiles.wl_ours
           paper.Circuitgen.Profiles.wl_timberwolf)
        (r.ours.wl /. r.annealer.wl)
        (fmt_ratio paper.Circuitgen.Profiles.wl_ours
           paper.Circuitgen.Profiles.wl_gordian)
        (r.ours.wl /. r.gordian.wl))
    rows

(* ------------------------------------------------------------------ *)
(* Tables 3 and 4: timing                                              *)

let timing_circuits = [ "fract"; "struct"; "biomed"; "avq.small"; "avq.large" ]

type t3_row = {
  tname : string;
  lower : float;
  sa_without : float;
  sa_with : float;
  sa_cpu : float;
  ours_without : float;
  ours_with : float;
  ours_cpu : float;
}

let table34_rows = ref ([] : t3_row list)

let compute_table34 () =
  if !table34_rows = [] then
    table34_rows :=
      List.map
        (fun name ->
          let _, circuit, p0 = build_profile name in
          Printf.eprintf "[table3/4] %s...\n%!" name;
          let tp = Timing.Params.default in
          let lower = Timing.Sta.lower_bound tp circuit in
          let delay_of p = (Timing.Sta.analyse tp circuit p).Timing.Sta.max_delay in
          (* Ours. *)
          let (ours, ours_cpu) =
            time (fun () ->
                let state, _ =
                  Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0
                in
                let plain = delay_of state.Kraftwerk.Placer.placement in
                let opt =
                  Timing.Driven.optimize ~params:tp Kraftwerk.Config.standard
                    circuit p0
                in
                (plain, delay_of opt.Timing.Driven.placement))
          in
          (* Timing-driven annealing baseline. *)
          let config = annealer_config circuit in
          let (sa, sa_cpu) =
            time (fun () ->
                let r = Baselines.Timing_sa.place ~config ~params:tp circuit p0 in
                (r.Baselines.Timing_sa.initial_delay,
                 r.Baselines.Timing_sa.final_delay))
          in
          {
            tname = name;
            lower;
            sa_without = fst sa;
            sa_with = snd sa;
            sa_cpu;
            ours_without = fst ours;
            ours_with = snd ours;
            ours_cpu;
          })
        timing_circuits;
  !table34_rows

let table3 () =
  let rows = compute_table34 () in
  print_endline "";
  print_endline "Table 3: longest path (ns) without / with timing optimisation";
  Printf.printf "%-11s | %9s %9s %8s | %9s %9s %8s\n" "circuit" "SA w/o"
    "SA with" "SA cpu" "Ours w/o" "Ours with" "Ours cpu";
  List.iter
    (fun r ->
      Printf.printf "%-11s | %9.2f %9.2f %8.1f | %9.2f %9.2f %8.1f\n" r.tname
        (r.sa_without *. 1e9) (r.sa_with *. 1e9) r.sa_cpu
        (r.ours_without *. 1e9) (r.ours_with *. 1e9) r.ours_cpu)
    rows

let table4 () =
  let rows = compute_table34 () in
  print_endline "";
  print_endline
    "Table 4: exploitation of the optimisation potential (higher = better)";
  Printf.printf "%-11s | %10s | %8s %8s | %8s %8s\n" "circuit" "lower ns"
    "SA expl" "rel CPU" "Ours" "rel CPU";
  let acc_sa = ref 0. and acc_ours = ref 0. and n = ref 0 in
  List.iter
    (fun r ->
      let e_sa =
        Timing.Driven.exploitation ~unoptimized:r.sa_without
          ~optimized:r.sa_with ~lower_bound:r.lower
      in
      let e_ours =
        Timing.Driven.exploitation ~unoptimized:r.ours_without
          ~optimized:r.ours_with ~lower_bound:r.lower
      in
      acc_sa := !acc_sa +. e_sa;
      acc_ours := !acc_ours +. e_ours;
      incr n;
      Printf.printf "%-11s | %10.2f | %7.0f%% %8.2f | %7.0f%% %8.2f\n" r.tname
        (r.lower *. 1e9) (100. *. e_sa)
        (r.sa_cpu /. Float.max r.ours_cpu 1e-9)
        (100. *. e_ours) 1.0)
    rows;
  Printf.printf "%-11s | %10s | %7.0f%% %8s | %7.0f%% %8s\n" "average" ""
    (100. *. !acc_sa /. float_of_int !n)
    "" (100. *. !acc_ours /. float_of_int !n) ""

(* ------------------------------------------------------------------ *)
(* E5: fast mode vs standard mode                                      *)

let fast_mode () =
  print_endline "";
  print_endline "E5: fast mode (K = 0.2) vs standard mode (K = 0.05), §6.1";
  Printf.printf "%-11s | %12s %8s | %12s %8s | %8s %8s\n" "circuit" "std wl"
    "std cpu" "fast wl" "fast cpu" "wl +%" "speedup";
  let acc_wl = ref 0. and acc_sp = ref 0. and n = ref 0 in
  List.iter
    (fun name ->
      let _, circuit, p0 = build_profile name in
      let std = run_kraftwerk circuit p0 in
      let fast = run_kraftwerk ~config:Kraftwerk.Config.fast circuit p0 in
      let dwl = 100. *. (fast.wl -. std.wl) /. std.wl in
      let sp = std.cpu /. Float.max fast.cpu 1e-9 in
      acc_wl := !acc_wl +. dwl;
      acc_sp := !acc_sp +. sp;
      incr n;
      Printf.printf "%-11s | %12.4g %8.1f | %12.4g %8.1f | %+7.1f%% %7.1fx\n"
        name std.wl std.cpu fast.wl fast.cpu dwl sp)
    [ "fract"; "primary1"; "struct"; "primary2"; "biomed" ];
  Printf.printf "%-11s | %12s %8s | %12s %8s | %+7.1f%% %7.1fx\n" "average" ""
    "" "" ""
    (!acc_wl /. float_of_int !n)
    (!acc_sp /. float_of_int !n)

(* ------------------------------------------------------------------ *)
(* E6: timing-requirement trade-off curve                              *)

let tradeoff () =
  print_endline "";
  print_endline
    "E6: timing/area trade-off — two-phase requirement mode on biomed (§5)";
  let _, circuit, p0 = build_profile "biomed" in
  let tp = Timing.Params.default in
  let lower = Timing.Sta.lower_bound tp circuit in
  (* First find the area-converged delay, then require 45 % of the
     optimisation potential — inside what E3/E4 show is achievable. *)
  let probe_state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
  let converged =
    (Timing.Sta.analyse tp circuit probe_state.Kraftwerk.Placer.placement)
      .Timing.Sta.max_delay
  in
  let target = converged -. (0.45 *. (converged -. lower)) in
  let r =
    Timing.Driven.meet_requirement ~params:tp ~max_extra_steps:40
      Kraftwerk.Config.standard circuit p0 ~target
  in
  Printf.printf "lower bound %.2f ns; area-converged %.2f ns; target %.2f ns; met=%b\n"
    (lower *. 1e9)
    (r.Timing.Driven.initial_delay *. 1e9)
    (target *. 1e9) r.Timing.Driven.met;
  Printf.printf "%6s %14s %10s\n" "step" "hpwl" "delay ns";
  List.iter
    (fun (pt : Timing.Driven.trace_point) ->
      Printf.printf "%6d %14.4g %10.2f\n" pt.Timing.Driven.at_step
        pt.Timing.Driven.hpwl
        (pt.Timing.Driven.delay *. 1e9))
    r.Timing.Driven.trace

(* ------------------------------------------------------------------ *)
(* E7: ECO stability                                                   *)

let eco () =
  print_endline "";
  print_endline "E7: ECO — netlist perturbation and incremental re-placement (§5)";
  let _, circuit, p0 = build_profile "biomed" in
  let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
  let placed = state.Kraftwerk.Placer.placement in
  let rng = Numeric.Rng.create 123 in
  let circuit' = Kraftwerk.Eco.rewire circuit rng ~fraction:0.02 in
  let circuit' =
    Kraftwerk.Eco.resize circuit' rng ~fraction:0.05 ~scale_range:(1.2, 1.6)
  in
  let adapted, reports =
    Kraftwerk.Eco.replace Kraftwerk.Config.standard circuit'
      (Netlist.Placement.copy placed) ~max_steps:12
  in
  let region = circuit.Netlist.Circuit.region in
  let diag =
    sqrt
      (((Geometry.Rect.width region) ** 2.)
      +. ((Geometry.Rect.height region) ** 2.))
  in
  let n_mov = Netlist.Circuit.num_movable circuit in
  let mean_disp =
    Netlist.Placement.displacement placed adapted /. float_of_int n_mov
  in
  Printf.printf
    "2%% nets rewired + 5%% gates resized; %d transformations\n"
    (List.length reports);
  Printf.printf "mean displacement %.2f units (%.2f%% of die diagonal), max %.1f\n"
    mean_disp
    (100. *. mean_disp /. diag)
    (Netlist.Placement.max_displacement placed adapted);
  Printf.printf "hpwl before %.4g, after %.4g\n"
    (Metrics.Wirelength.hpwl circuit placed)
    (Metrics.Wirelength.hpwl circuit' adapted)

(* ------------------------------------------------------------------ *)
(* E8: mixed block/cell floorplanning                                  *)

let floorplan () =
  print_endline "";
  print_endline "E8: mixed block/cell floorplanning (§5)";
  Printf.printf "%-11s %7s %7s | %12s %12s %9s %6s\n" "circuit" "#cells"
    "#blocks" "global wl" "final wl" "blk disp" "legal";
  List.iter
    (fun (name, blocks) ->
      let prof = Circuitgen.Profiles.find name in
      let params =
        { (Circuitgen.Profiles.params ~scale:!scale prof ~seed:!seed) with
          Circuitgen.Gen.num_blocks = blocks }
      in
      let circuit, pads = Circuitgen.Gen.generate params in
      let p0 = Circuitgen.Gen.initial_placement circuit pads in
      let r = Floorplan.Mixed.place Kraftwerk.Config.standard circuit p0 in
      let rects = Floorplan.Mixed.block_rects circuit r.Floorplan.Mixed.placement in
      let block_overlaps = ref 0 in
      List.iteri
        (fun i (_, a) ->
          List.iteri
            (fun j (_, b) ->
              if j > i && Geometry.Rect.overlap_area a b > 1e-6 then
                incr block_overlaps)
            rects)
        rects;
      Printf.printf "%-11s %7d %7d | %12.4g %12.4g %9.1f %6b\n" name
        (Netlist.Circuit.num_cells circuit)
        blocks r.Floorplan.Mixed.hpwl_global r.Floorplan.Mixed.hpwl_final
        r.Floorplan.Mixed.block_displacement
        (!block_overlaps = 0
        && Legalize.Check.is_legal circuit r.Floorplan.Mixed.placement))
    [ ("primary1", 8); ("struct", 10); ("biomed", 14) ]

(* ------------------------------------------------------------------ *)
(* E9/E10: congestion- and heat-driven placement                       *)

let congestion () =
  print_endline "";
  print_endline "E9: congestion-driven placement (§5)";
  let _, circuit, p0 = build_profile "industry2" in
  let run config =
    let state, _ = Kraftwerk.Placer.run config circuit p0 in
    let p = state.Kraftwerk.Placer.placement in
    (* The estimator drives the loop; the actual coarse global router
       validates the result — both on the same grid spec. *)
    let spec = Kraftwerk.Placer.route_spec config circuit in
    let est =
      match Route.Congest.estimate circuit p spec with
      | Ok e -> e.Route.Congest.total_overflow
      | Error _ -> Float.nan
    in
    let rt, rwl =
      match Route.Grouter.route circuit p spec with
      | Ok r -> (r.Route.Grouter.total_overflow, r.Route.Grouter.total_wirelength)
      | Error _ -> (Float.nan, Float.nan)
    in
    (Metrics.Wirelength.hpwl circuit p, est, rt, rwl)
  in
  let wl0, est0, rt0, rwl0 = run Kraftwerk.Config.standard in
  let wl1, est1, rt1, rwl1 =
    run (Kraftwerk.Config.routability Kraftwerk.Config.standard)
  in
  Printf.printf
    "plain:             hpwl %.4g  est overflow %.4g  routed overflow %.4g  routed wl %.4g\n"
    wl0 est0 rt0 rwl0;
  Printf.printf
    "congestion-driven: hpwl %.4g  est overflow %.4g (%+.1f%%)  routed overflow %.4g (%+.1f%%)  routed wl %.4g\n"
    wl1 est1
    (100. *. (est1 -. est0) /. Float.max est0 1e-9)
    rt1
    (100. *. (rt1 -. rt0) /. Float.max rt0 1e-9)
    rwl1

let heat () =
  print_endline "";
  print_endline "E10: heat-driven placement (§5)";
  let _, circuit, p0 = build_profile "biomed" in
  let nx, ny = Density.Density_map.auto_bins circuit in
  let run hooks =
    let state, _ = Kraftwerk.Placer.run ?hooks Kraftwerk.Config.standard circuit p0 in
    let p = state.Kraftwerk.Placer.placement in
    (Metrics.Wirelength.hpwl circuit p,
     (Route.Heat.analyse circuit p ~nx ~ny).Route.Heat.peak)
  in
  let wl0, pk0 = run None in
  let hooks =
    { Kraftwerk.Placer.no_hooks with
      Kraftwerk.Placer.extra_density =
        Some (fun c p ~nx ~ny -> Route.Heat.extra_density ~strength:1.0 c p ~nx ~ny) }
  in
  let wl1, pk1 = run (Some hooks) in
  Printf.printf "plain:       hpwl %.4g  peak heat %.4g\n" wl0 pk0;
  Printf.printf "heat-driven: hpwl %.4g  peak heat %.4g (%+.1f%%)\n" wl1 pk1
    (100. *. (pk1 -. pk0) /. Float.max pk0 1e-30)

(* ------------------------------------------------------------------ *)
(* A2: linearisation ablation                                          *)

let linearization () =
  print_endline "";
  print_endline
    "A2: net-weight linearisation ablation — quadratic vs GORDIAN-L scaling";
  Printf.printf "%-11s | %12s %6s | %12s %6s\n" "circuit" "quad wl" "steps"
    "linear wl" "steps";
  List.iter
    (fun name ->
      let _, circuit, p0 = build_profile name in
      let run cfg =
        let state, reports = Kraftwerk.Placer.run cfg circuit p0 in
        ( Metrics.Wirelength.hpwl circuit
            (finalize circuit state.Kraftwerk.Placer.placement),
          List.length reports )
      in
      let qwl, qs = run Kraftwerk.Config.standard in
      let lwl, ls =
        run { Kraftwerk.Config.standard with Kraftwerk.Config.linearize = true }
      in
      Printf.printf "%-11s | %12.4g %6d | %12.4g %6d\n" name qwl qs lwl ls)
    [ "fract"; "primary1"; "struct" ]

(* ------------------------------------------------------------------ *)
(* A4: final-placer ablation                                           *)

let final_placer () =
  print_endline "";
  print_endline
    "A4: final-placement ablation — Abacus alone, +improve, +Domino flow/reorder";
  Printf.printf "%-11s | %12s %12s %12s %12s\n" "circuit" "abacus" "+improve"
    "+domino" "tetris ref";
  List.iter
    (fun name ->
      let _, circuit, p0 = build_profile name in
      let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
      let global = state.Kraftwerk.Placer.placement in
      let abacus = (Legalize.Abacus.legalize circuit global ()).Legalize.Abacus.placement in
      let w_abacus = Metrics.Wirelength.hpwl circuit abacus in
      let improved = Netlist.Placement.copy abacus in
      ignore (Legalize.Improve.run circuit improved);
      let w_improved = Metrics.Wirelength.hpwl circuit improved in
      ignore (Legalize.Domino.run circuit improved);
      let w_domino = Metrics.Wirelength.hpwl circuit improved in
      let w_tetris =
        match Legalize.Tetris.legalize circuit global () with
        | Ok rep -> Metrics.Wirelength.hpwl circuit rep.Legalize.Tetris.placement
        | Error e -> Format.kasprintf failwith "tetris: %a" Legalize.Tetris.pp_error e
      in
      Printf.printf "%-11s | %12.4g %12.4g %12.4g %12.4g\n" name w_abacus
        w_improved w_domino w_tetris)
    [ "fract"; "primary1"; "struct" ]

(* ------------------------------------------------------------------ *)
(* A6: net-model ablation (clique vs Bound2Bound)                      *)

let net_model () =
  print_endline "";
  print_endline
    "A6: net-model ablation — paper's clique vs Bound2Bound under force injection";
  Printf.printf "%-11s | %12s %6s | %12s %6s | %8s\n" "circuit" "clique wl"
    "steps" "b2b wl" "steps" "wl Δ%";
  List.iter
    (fun name ->
      let _, circuit, p0 = build_profile name in
      let run cfg =
        let state, reports = Kraftwerk.Placer.run cfg circuit p0 in
        ( Metrics.Wirelength.hpwl circuit
            (finalize circuit state.Kraftwerk.Placer.placement),
          List.length reports )
      in
      let cw, cs = run Kraftwerk.Config.standard in
      let bw, bs =
        run
          { Kraftwerk.Config.standard with
            Kraftwerk.Config.net_model = Qp.System.Bound2bound }
      in
      Printf.printf "%-11s | %12.4g %6d | %12.4g %6d | %+7.1f%%\n" name cw cs bw
        bs
        (100. *. (bw -. cw) /. cw))
    [ "fract"; "primary1"; "struct" ]

(* ------------------------------------------------------------------ *)
(* A5: multilevel (clustered) placement extension                      *)

let multilevel () =
  print_endline "";
  print_endline
    "A5: multilevel extension — cluster, place coarse, expand, refine";
  Printf.printf "%-11s | %12s %8s | %12s %8s | %8s\n" "circuit" "flat wl"
    "cpu" "multilevel wl" "cpu" "wl Δ%";
  List.iter
    (fun name ->
      let prof = Circuitgen.Profiles.find name in
      let params = Circuitgen.Profiles.params ~scale:!scale prof ~seed:!seed in
      let circuit, pads = Circuitgen.Gen.generate params in
      let p0 = Circuitgen.Gen.initial_placement circuit pads in
      let (flat, flat_cpu) =
        time (fun () ->
            let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
            finalize circuit state.Kraftwerk.Placer.placement)
      in
      let (ml, ml_cpu) =
        time (fun () ->
            finalize circuit
              (Kraftwerk.Cluster.place_multilevel Kraftwerk.Config.standard
                 circuit ~fixed_positions:pads p0))
      in
      let flat_wl = Metrics.Wirelength.hpwl circuit flat in
      let ml_wl = Metrics.Wirelength.hpwl circuit ml in
      Printf.printf "%-11s | %12.4g %8.1f | %12.4g %8.1f | %+7.1f%%\n" name
        flat_wl flat_cpu ml_wl ml_cpu
        (100. *. (ml_wl -. flat_wl) /. flat_wl))
    [ "primary1"; "struct"; "biomed" ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (A1, A3 and kernel costs)                 *)

(* Machine-readable kernel timings, so later PRs inherit a perf
   trajectory.  Written next to wherever the bench runs. *)
let write_kernels_json path rows =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"git\": %S,\n  \"domains\": %d,\n  \"scale\": %g,\n  \"kernels_ns\": {\n"
    (git_revision ())
    (Numeric.Parallel.num_domains ())
    !scale;
  let n = List.length rows in
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "    %S: %.1f%s\n" name est
        (if i < n - 1 then "," else ""))
    rows;
  Printf.fprintf oc "  },\n  \"speedups\": {\n";
  let ratio num den =
    match (List.assoc_opt num rows, List.assoc_opt den rows) with
    | Some a, Some b when b > 0. && Float.is_finite a -> a /. b
    | _ -> Float.nan
  in
  let speedups =
    [
      ("spmv_pool", ratio "kernels/spmv-seq-primary1" "kernels/spmv-pool-primary1");
      ( "fft_kernel_cache",
        ratio "kernels/poisson-fft-48-cold" "kernels/poisson-fft-48-warm" );
      ( "qp_refill",
        ratio "kernels/qp-assemble-primary1" "kernels/qp-refill-primary1" );
      ( "real_vs_complex_96",
        ratio "kernels/poisson-complex-96" "kernels/poisson-real-96" );
      ( "real_vs_complex_128",
        ratio "kernels/poisson-complex-128" "kernels/poisson-real-128" );
      ( "real_vs_complex_256",
        ratio "kernels/poisson-complex-256" "kernels/poisson-real-256" );
      ( "real_vs_complex_512",
        ratio "kernels/poisson-complex-512" "kernels/poisson-real-512" );
    ]
  in
  let ns = List.length speedups in
  List.iteri
    (fun i (name, v) ->
      let s = if Float.is_nan v then "null" else Printf.sprintf "%.3f" v in
      Printf.fprintf oc "    %S: %s%s\n" name s (if i < ns - 1 then "," else ""))
    speedups;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

let micro_run () =
  print_endline "";
  print_endline "Micro-benchmarks (bechamel): numerical kernels";
  Printf.printf "domain pool: %d domain(s)\n" (Numeric.Parallel.num_domains ());
  let open Bechamel in
  let density_grid n =
    let rng = Numeric.Rng.create 5 in
    Array.init (n * n) (fun _ -> Numeric.Rng.uniform rng (-1.) 1.)
  in
  let g24 = density_grid 24 in
  let g48 = density_grid 48 in
  let _, circuit, p0 = build_profile "primary1" in
  let state, _ = Kraftwerk.Placer.run Kraftwerk.Config.standard circuit p0 in
  let placed = state.Kraftwerk.Placer.placement in
  let weights = Array.make (Netlist.Circuit.num_nets circuit) 1. in
  let system =
    Qp.System.build circuit ~placement:placed ~net_weights:weights
      ~edge_scale:Qp.Weights.quadratic ()
  in
  let n_mov = Qp.System.num_movable system in
  (* Pooled vs sequential SpMV on the real placement matrix, and cold
     vs warm FFT force field (kernel-spectrum cache): the before/after
     pairs behind BENCH_kernels.json's speedup entries. *)
  let spmv_m = Qp.System.matrix system in
  let spmv_x =
    Array.init (Numeric.Sparse.dim spmv_m) (fun i ->
        Float.of_int ((i mod 97) - 48) /. 97.)
  in
  let spmv_y = Array.make (Numeric.Sparse.dim spmv_m) 0. in
  let tests =
    [
      Test.make ~name:"spmv-seq-primary1"
        (Staged.stage (fun () -> Numeric.Sparse.mul_seq spmv_m spmv_x spmv_y));
      Test.make ~name:"spmv-pool-primary1"
        (Staged.stage (fun () -> Numeric.Sparse.mul spmv_m spmv_x spmv_y));
      Test.make ~name:"poisson-fft-48-cold"
        (Staged.stage (fun () ->
             Numeric.Poisson.clear_kernel_cache ();
             Numeric.Poisson.fft_force_field ~rows:48 ~cols:48 ~hx:1. ~hy:1. g48));
      Test.make ~name:"poisson-fft-48-warm"
        (Staged.stage (fun () ->
             (* First call of the run warms the cache; steady state hits it. *)
             Numeric.Poisson.fft_force_field ~rows:48 ~cols:48 ~hx:1. ~hy:1. g48));
      Test.make ~name:"poisson-direct-24"
        (Staged.stage (fun () ->
             Numeric.Poisson.direct_force_field ~rows:24 ~cols:24 ~hx:1. ~hy:1. g24));
      Test.make ~name:"poisson-fft-24"
        (Staged.stage (fun () ->
             Numeric.Poisson.fft_force_field ~rows:24 ~cols:24 ~hx:1. ~hy:1. g24));
      Test.make ~name:"poisson-fft-48"
        (Staged.stage (fun () ->
             Numeric.Poisson.fft_force_field ~rows:48 ~cols:48 ~hx:1. ~hy:1. g48));
      Test.make ~name:"poisson-sor-24"
        (Staged.stage (fun () ->
             Numeric.Poisson.sor_potential ~rows:24 ~cols:24 ~hx:1. ~hy:1.
               ~max_iter:500 g24));
      Test.make ~name:"qp-assemble-primary1"
        (Staged.stage (fun () ->
             Qp.System.build circuit ~placement:placed ~net_weights:weights
               ~edge_scale:Qp.Weights.quadratic ()));
      Test.make ~name:"qp-refill-primary1"
        (Staged.stage
           (let asm = Qp.System.assembly circuit () in
            (* First rebuild compiles the pattern; the measured steady
               state is the per-iteration numeric refill. *)
            ignore
              (Qp.System.rebuild asm ~placement:placed ~net_weights:weights
                 ~edge_scale:Qp.Weights.quadratic ());
            fun () ->
              Qp.System.rebuild asm ~placement:placed ~net_weights:weights
                ~edge_scale:Qp.Weights.quadratic ()));
      Test.make ~name:"qp-solve-primary1"
        (Staged.stage (fun () ->
             Qp.System.solve system
               ~placement:(Netlist.Placement.copy placed)
               ~ex:(Array.make n_mov 0.) ~ey:(Array.make n_mov 0.)));
      Test.make ~name:"density-map-primary1"
        (Staged.stage (fun () ->
             let nx, ny = Density.Density_map.auto_bins circuit in
             Density.Density_map.build circuit placed ~nx ~ny ()));
      Test.make ~name:"sta-primary1"
        (Staged.stage (fun () ->
             Timing.Sta.analyse Timing.Params.default circuit placed));
      Test.make ~name:"hpwl-primary1"
        (Staged.stage (fun () -> Metrics.Wirelength.hpwl circuit placed));
      Test.make ~name:"assignment-16x16"
        (Staged.stage
           (let rng = Numeric.Rng.create 9 in
            let costs =
              Array.init 16 (fun _ ->
                  Array.init 16 (fun _ -> Numeric.Rng.uniform rng 0. 100.))
            in
            fun () -> Numeric.Mincostflow.assignment ~costs));
      Test.make ~name:"grouter-primary1"
        (Staged.stage (fun () ->
             let nx, ny = Density.Density_map.auto_bins circuit in
             Route.Grouter.route circuit placed (Route.Grid_spec.make ~nx ~ny ())));
      Test.make ~name:"congest-estimate-primary1"
        (Staged.stage (fun () ->
             let nx, ny = Density.Density_map.auto_bins circuit in
             Route.Congest.estimate circuit placed (Route.Grid_spec.make ~nx ~ny ())));
    ]
  in
  let test = Test.make_grouped ~name:"kernels" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | Some _ | None -> rows := (name, Float.nan) :: !rows)
    results;
  (* Real-vs-complex Poisson comparison grids.  A single 512² complex
     call costs hundreds of milliseconds — past bechamel's quota — so
     these rows come from a plain monotonic loop instead; the first call
     of each path warms the kernel spectra and workspaces and is
     excluded from the measurement. *)
  List.iter
    (fun n ->
      let g = density_grid n in
      let time_ns f =
        ignore (f ());
        let reps = if n >= 256 then 3 else 6 in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps do
          ignore (f ())
        done;
        (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps
      in
      let real =
        time_ns (fun () ->
            Numeric.Poisson.fft_force_field ~rows:n ~cols:n ~hx:1. ~hy:1. g)
      in
      let cplx =
        time_ns (fun () ->
            Numeric.Poisson.fft_force_field_complex ~rows:n ~cols:n ~hx:1.
              ~hy:1. g)
      in
      rows :=
        (Printf.sprintf "kernels/poisson-real-%d" n, real)
        :: (Printf.sprintf "kernels/poisson-complex-%d" n, cplx)
        :: !rows)
    [ 96; 128; 256; 512 ];
  List.iter
    (fun (name, est) ->
      if Float.is_nan est then Printf.printf "%-34s (no estimate)\n" name
      else Printf.printf "%-34s %14.0f ns/run\n" name est)
    (List.sort compare !rows);
  write_kernels_json "BENCH_kernels.json" (List.sort compare !rows);
  let failed =
    List.filter_map
      (fun (name, est) -> if Float.is_nan est then Some name else None)
      !rows
  in
  if failed <> [] then begin
    Printf.eprintf "micro: no estimate for: %s\n" (String.concat ", " failed);
    exit 1
  end

(* A kernel that raises (or yields no estimate) must fail the harness
   visibly — CI treats BENCH_kernels.json as trustworthy only when the
   run exits 0. *)
let micro () =
  try micro_run ()
  with e ->
    Printf.eprintf "micro: kernel benchmark failed: %s\n" (Printexc.to_string e);
    exit 1

(* ------------------------------------------------------------------ *)
(* End-to-end placement telemetry → BENCH_place.json                   *)

let place_bench_profiles = [ "fract"; "primary1" ]

(* One instrumented placement run: collected telemetry records, the
   final placer state and the wall time. *)
let instrumented_run config circuit p0 =
  Obs.Registry.reset ();
  Numeric.Poisson.clear_kernel_cache ();
  let sink, read = Obs.Sink.collecting () in
  let ((state, _), cpu) =
    Obs.Sink.with_sink sink (fun () ->
        time (fun () -> Kraftwerk.Placer.run config circuit p0))
  in
  let records, _ = read () in
  (state, records, cpu)

(* Per-effort convergence rows: iterations-to-converge, the stop
   criterion that fired and the finalized (Abacus+Improve+Domino) HPWL
   the CI smoke matrix gates regressions against. *)
let effort_entries circuit p0 =
  List.map
    (fun e ->
      let config = Kraftwerk.Config.effort e in
      let state, records, cpu = instrumented_run config circuit p0 in
      let global = state.Kraftwerk.Placer.placement in
      let legalized =
        Metrics.Wirelength.hpwl circuit (finalize circuit global)
      in
      let num v = Obs.Json.Num v in
      ( string_of_int e,
        Obs.Json.Obj
          [
            ("iterations", num (float_of_int (List.length records)));
            ( "max_iterations",
              num (float_of_int config.Kraftwerk.Config.max_iterations) );
            ("wall_s", num cpu);
            ( "stop_reason",
              match Kraftwerk.Placer.stop_reason state with
              | Some r ->
                Obs.Json.Str (Kraftwerk.Controller.reason_to_string r)
              | None -> Obs.Json.Null );
            ("final_hpwl_global", num (Metrics.Wirelength.hpwl circuit global));
            ("final_hpwl_legalized", num legalized);
          ] ))
    [ 1; 5; 9 ]

(* Routability closed-loop rows: wirelength vs routability objective at
   equal effort, both legalized and validated with the actual global
   router on the same grid spec.  CI gates the routed overflow of these
   rows like it gates HPWL. *)
let routability_entries circuit p0 =
  let run config =
    let state, _ = Kraftwerk.Placer.run config circuit p0 in
    let lp = finalize circuit state.Kraftwerk.Placer.placement in
    let hpwl = Metrics.Wirelength.hpwl circuit lp in
    match
      Route.Grouter.route circuit lp (Kraftwerk.Placer.route_spec config circuit)
    with
    | Ok r ->
      (hpwl, r.Route.Grouter.total_overflow, r.Route.Grouter.max_overflow)
    | Error _ -> (hpwl, Float.nan, Float.nan)
  in
  let wl_hpwl, wl_ovfl, wl_max = run Kraftwerk.Config.standard in
  let rt_hpwl, rt_ovfl, rt_max =
    run (Kraftwerk.Config.routability Kraftwerk.Config.standard)
  in
  let num v = Obs.Json.Num v in
  Obs.Json.Obj
    [
      ("hpwl_wirelength", num wl_hpwl);
      ("hpwl_routability", num rt_hpwl);
      ("routed_overflow_wirelength", num wl_ovfl);
      ("routed_overflow_routability", num rt_ovfl);
      ("routed_max_overflow_wirelength", num wl_max);
      ("routed_max_overflow_routability", num rt_max);
      ( "overflow_reduction_pct",
        num (100. *. (wl_ovfl -. rt_ovfl) /. Float.max wl_ovfl 1e-9) );
      ("hpwl_delta_pct", num (100. *. (rt_hpwl -. wl_hpwl) /. wl_hpwl));
    ]

let place_bench () =
  print_endline "";
  print_endline "Placement telemetry bench: end-to-end iteration timings";
  let was_enabled = Obs.Registry.enabled () in
  Obs.Registry.set_enabled true;
  let built = List.map (fun name -> (name, build_profile name)) place_bench_profiles in
  let entries =
    List.map
      (fun (name, (_, circuit, p0)) ->
        Printf.eprintf "[place-bench] %s (%d cells)...\n%!" name
          (Netlist.Circuit.num_cells circuit);
        let _, records, cpu =
          instrumented_run Kraftwerk.Config.standard circuit p0
        in
        let n = List.length records in
        let last = match List.rev records with [] -> None | r :: _ -> Some r in
        let phase_mean phase =
          let s =
            List.fold_left
              (fun acc (r : Obs.Telemetry.iteration) ->
                match List.assoc_opt phase r.Obs.Telemetry.phases with
                | Some dt -> Obs.Stat.observe acc dt
                | None -> acc)
              Obs.Stat.zero records
          in
          Obs.Stat.mean s *. 1e3
        in
        let cg_total =
          List.fold_left
            (fun acc (r : Obs.Telemetry.iteration) ->
              acc + r.Obs.Telemetry.cg_iterations_x
              + r.Obs.Telemetry.cg_iterations_y)
            0 records
        in
        let num v = Obs.Json.Num v in
        ( name,
          Obs.Json.Obj
            [
              ("iterations", num (float_of_int n));
              ("wall_s", num cpu);
              ("mean_iter_ms", num (if n = 0 then 0. else cpu /. float_of_int n *. 1e3));
              ( "phase_ms",
                Obs.Json.Obj
                  (List.map
                     (fun p -> (p, num (phase_mean p)))
                     [ "assemble"; "density"; "solve"; "metrics" ]) );
              ("cg_iterations", num (float_of_int cg_total));
              ( "final_hpwl",
                match last with
                | Some r -> num r.Obs.Telemetry.hpwl
                | None -> Obs.Json.Null );
              ( "final_overflow",
                match last with
                | Some r -> num r.Obs.Telemetry.overflow
                | None -> Obs.Json.Null );
            ] ))
      built
  in
  let efforts =
    List.map
      (fun (name, (_, circuit, p0)) ->
        Printf.eprintf "[place-bench] %s effort matrix...\n%!" name;
        (name, Obs.Json.Obj (effort_entries circuit p0)))
      built
  in
  let routability =
    List.map
      (fun (name, (_, circuit, p0)) ->
        Printf.eprintf "[place-bench] %s routability...\n%!" name;
        (name, routability_entries circuit p0))
      built
  in
  Obs.Registry.set_enabled was_enabled;
  let doc =
    Obs.Json.Obj
      [
        ("git", Obs.Json.Str (git_revision ()));
        ("domains", Obs.Json.Num (float_of_int (Numeric.Parallel.num_domains ())));
        ("scale", Obs.Json.Num !scale);
        ("profiles", Obs.Json.Obj entries);
        ("efforts", Obs.Json.Obj efforts);
        ("routability", Obs.Json.Obj routability);
      ]
  in
  let oc = open_out "BENCH_place.json" in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  List.iter
    (fun (name, entry) ->
      match (Obs.Json.member "iterations" entry, Obs.Json.member "mean_iter_ms" entry) with
      | Some (Obs.Json.Num n), Some (Obs.Json.Num ms) ->
        Printf.printf "%-11s %4.0f iterations  %8.2f ms/iteration\n" name n ms
      | _ -> ())
    entries;
  List.iter
    (fun (name, rows) ->
      match rows with
      | Obs.Json.Obj rows ->
        List.iter
          (fun (e, row) ->
            match
              ( Obs.Json.member "iterations" row,
                Obs.Json.member "final_hpwl_legalized" row,
                Obs.Json.member "stop_reason" row )
            with
            | Some (Obs.Json.Num n), Some (Obs.Json.Num wl), reason ->
              Printf.printf
                "%-11s effort %s  %4.0f iterations  final %12.4g  (%s)\n" name
                e n wl
                (match reason with
                | Some (Obs.Json.Str r) -> r
                | _ -> "budget")
            | _ -> ())
          rows
      | _ -> ())
    efforts;
  List.iter
    (fun (name, row) ->
      match
        ( Obs.Json.member "routed_overflow_wirelength" row,
          Obs.Json.member "routed_overflow_routability" row,
          Obs.Json.member "overflow_reduction_pct" row,
          Obs.Json.member "hpwl_delta_pct" row )
      with
      | ( Some (Obs.Json.Num wo),
          Some (Obs.Json.Num ro),
          Some (Obs.Json.Num red),
          Some (Obs.Json.Num dh) ) ->
        Printf.printf
          "%-11s routed overflow %8.4g -> %8.4g (-%.1f%%)  hpwl %+.2f%%\n"
          name wo ro red dh
      | _ -> ())
    routability;
  print_endline "wrote BENCH_place.json"

(* ------------------------------------------------------------------ *)
(* Job-engine throughput → BENCH_engine.json                           *)

(* Jobs/second of the scheduler on biomed across a domains × concurrency
   grid.  Each job is a bounded fast-mode run through the full finishing
   pipeline (Abacus, Improve, Domino).  domains = 1 runs the inline
   cooperative scheduler; domains > 1 runs the sharded scheduler with
   min(domains, K) worker domains.  The work per job is identical at
   every grid point — trajectories are interleaving- and
   sharding-invariant — which the harness enforces bitwise on every
   job's final HPWL before writing the file.  Wall-clock scaling across
   the domains axis additionally needs that many hardware cores; the
   "cores" field records what this host actually had. *)
let engine_bench () =
  print_endline "";
  print_endline
    "Job-engine bench: scheduler throughput on biomed (domains x K grid)";
  let profile = "biomed" and jobs = 6 and max_steps = 8 in
  let configured = Numeric.Parallel.num_domains () in
  (* seed -> (hpwl bits, iterations) from the first grid point. *)
  let reference = Hashtbl.create 16 in
  let bitwise = ref true in
  let d1_k4 = ref nan and d4_k4 = ref nan in
  let cells =
    List.concat_map
      (fun d ->
        List.map
          (fun k ->
            let shards = if d = 1 then 0 else min d k in
            Numeric.Parallel.set_num_domains d;
            let sched =
              Engine.Scheduler.create ~concurrency:k ~domains:d ~shards ()
            in
            let ids =
              List.init jobs (fun i ->
                  ( !seed + i,
                    Engine.Scheduler.submit sched
                      (Engine.Job.spec
                         ~source:
                           (Engine.Source.Profile
                              { name = profile; scale = !scale; seed = !seed + i })
                         ~mode:Engine.Job.Fast ~max_steps ()) ))
            in
            let (), wall = time (fun () -> Engine.Scheduler.drain sched) in
            let steals =
              List.fold_left
                (fun acc m -> acc + m.Engine.Scheduler.m_steals)
                0
                (Engine.Scheduler.shard_metrics sched)
            in
            Engine.Scheduler.stop sched;
            List.iter
              (fun (job_seed, id) ->
                match
                  (Engine.Scheduler.status sched id,
                   Engine.Scheduler.result sched id)
                with
                | Some Engine.Job.Done, Some r ->
                  let bits = Int64.bits_of_float r.Engine.Job.hpwl in
                  let iters = r.Engine.Job.iterations in
                  (match Hashtbl.find_opt reference job_seed with
                  | None -> Hashtbl.replace reference job_seed (bits, iters)
                  | Some (b0, i0) ->
                    if b0 <> bits || i0 <> iters then begin
                      Printf.eprintf
                        "engine bench: seed %d diverges at domains=%d K=%d\n"
                        job_seed d k;
                      bitwise := false
                    end)
                | status, _ ->
                  Printf.eprintf
                    "engine bench: job %d not done at domains=%d K=%d (%s)\n" id
                    d k
                    (match status with
                    | Some s -> Engine.Job.status_to_string s
                    | None -> "lost");
                  bitwise := false)
              ids;
            let jps = float_of_int jobs /. wall in
            if k = 4 && d = 1 then d1_k4 := jps;
            if k = 4 && d = 4 then d4_k4 := jps;
            Printf.printf
              "  domains=%d K=%d  %2d jobs  %6.2f s  %6.2f jobs/s  %d steals\n%!"
              d k jobs wall jps steals;
            Obs.Json.Obj
              [
                ("domains", Obs.Json.Num (float_of_int d));
                ("shards", Obs.Json.Num (float_of_int shards));
                ("concurrency", Obs.Json.Num (float_of_int k));
                ("wall_s", Obs.Json.Num wall);
                ("jobs_per_s", Obs.Json.Num jps);
                ("steals", Obs.Json.Num (float_of_int steals));
              ])
          [ 1; 2; 4 ])
      [ 1; 2; 4 ]
  in
  Numeric.Parallel.set_num_domains configured;
  let doc =
    Obs.Json.Obj
      [
        ("git", Obs.Json.Str (git_revision ()));
        ("domains", Obs.Json.Num (float_of_int configured));
        ("cores", Obs.Json.Num (float_of_int (Domain.recommended_domain_count ())));
        ("scale", Obs.Json.Num !scale);
        ("profile", Obs.Json.Str profile);
        ("jobs", Obs.Json.Num (float_of_int jobs));
        ("max_steps", Obs.Json.Num (float_of_int max_steps));
        ("grid", Obs.Json.Arr cells);
        ("bitwise_identical", Obs.Json.Bool !bitwise);
        ("speedup_d4_vs_d1_at_k4", Obs.Json.Num (!d4_k4 /. !d1_k4));
      ]
  in
  let oc = open_out "BENCH_engine.json" in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_engine.json";
  if not !bitwise then begin
    Printf.eprintf "engine bench: grid results are not bitwise-identical\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Network serving throughput → BENCH_serve.json                       *)

(* Spawns real [place serve --listen] servers (create_process, not fork
   — fork is unavailable once any worker domain has run) and drives them
   the way the CI smoke test does, across a domains × clients grid:
   clients pipelining submit/wait rounds (throughput), with every job's
   HPWL checked bitwise against the other grid points.  A final server
   gets a rapid-fire burst against a tiny admission bound (shed
   behaviour), then shutdown mid-load — it must still exit 0 with every
   accepted job terminal. *)
let place_exe () =
  let candidates =
    [
      "_build/default/bin/place.exe";
      "bin/place.exe";
      "../bin/place.exe";
      "../_build/default/bin/place.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith "serve bench: place.exe not built"

let spawn_server args =
  let exe = place_exe () in
  let argv = Array.of_list (exe :: "serve" :: args) in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close null)
    (fun () -> Unix.create_process exe argv null null null)

let serve_bench () =
  print_endline "";
  print_endline
    "Serving bench: socket round-trip throughput over the job engine \
     (domains x clients grid)";
  let fail fmt = Printf.ksprintf failwith fmt in
  let rounds = 3 and max_steps = 8 and max_pending = 4 in
  let fresh_sock =
    let counter = ref 0 in
    fun () ->
      incr counter;
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "place-bench-%d-%d.sock" (Unix.getpid ()) !counter)
  in
  let connect address =
    match Server.Client.connect ~retries:40 address with
    | Ok c -> c
    | Error msg -> fail "serve bench: %s" msg
  in
  let spec ~profile ~mode ?max_steps i =
    Engine.Job.spec
      ~source:
        (Engine.Source.Profile { name = profile; scale = !scale; seed = !seed + i })
      ~mode ?max_steps ()
  in
  let reap pid =
    match Unix.waitpid [] pid with _, Unix.WEXITED 0 -> true | _ -> false
  in
  (* seed index -> hpwl bits, across every grid point. *)
  let reference = Hashtbl.create 16 in
  let bitwise = ref true in
  (* Throughput cell: [clients] connections pipelining submit → wait
     against a server running [domains] lanes (sharded when > 1). *)
  let run_cell ~domains ~clients =
    let sock = fresh_sock () in
    if Sys.file_exists sock then Sys.remove sock;
    let address = Server.Address.Unix_path sock in
    let pid =
      spawn_server
        [
          "--listen"; "unix:" ^ sock;
          "--concurrency"; "2";
          "--domains"; string_of_int domains;
        ]
    in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists sock then Sys.remove sock)
      (fun () ->
        let conns = List.init clients (fun _ -> connect address) in
        let total = clients * rounds in
        let done_jobs = ref 0 in
        let (), wall =
          time (fun () ->
              List.iteri
                (fun ci c ->
                  for r = 0 to rounds - 1 do
                    let i = (ci * rounds) + r in
                    match
                      Server.Client.submit c
                        (spec ~profile:"fract" ~mode:Engine.Job.Fast ~max_steps
                           i)
                    with
                    | Error f ->
                      fail "submit: %s" (Server.Client.failure_message f)
                    | Ok id -> (
                      match Server.Client.wait c id with
                      | Ok ("done", Some r) ->
                        incr done_jobs;
                        (match Engine.Job.result_of_json r with
                        | Ok jr ->
                          let bits = Int64.bits_of_float jr.Engine.Job.hpwl in
                          (match Hashtbl.find_opt reference i with
                          | None -> Hashtbl.replace reference i bits
                          | Some b0 ->
                            if b0 <> bits then begin
                              Printf.eprintf
                                "serve bench: seed %d diverges at domains=%d \
                                 clients=%d\n"
                                i domains clients;
                              bitwise := false
                            end)
                        | Error e -> fail "result does not validate: %s" e)
                      | Ok (s, _) -> fail "job %d finished %s" id s
                      | Error f ->
                        fail "wait: %s" (Server.Client.failure_message f))
                  done)
                conns)
        in
        (match Server.Client.shutdown (List.hd conns) with
        | Ok () -> ()
        | Error f -> fail "shutdown: %s" (Server.Client.failure_message f));
        List.iter Server.Client.close conns;
        if not (reap pid) then fail "server exited dirty (domains=%d)" domains;
        if !done_jobs <> total then
          fail "cell domains=%d clients=%d: %d/%d done" domains clients
            !done_jobs total;
        let jps = float_of_int total /. wall in
        Printf.printf
          "  domains=%d  %d clients  %2d jobs  %6.2f s  %6.2f jobs/s\n%!"
          domains clients total wall jps;
        Obs.Json.Obj
          [
            ("domains", Obs.Json.Num (float_of_int domains));
            ("clients", Obs.Json.Num (float_of_int clients));
            ("jobs", Obs.Json.Num (float_of_int total));
            ("wall_s", Obs.Json.Num wall);
            ("jobs_per_s", Obs.Json.Num jps);
          ])
  in
  let domain_axis = [ 1; 2; 4 ] and client_axis = [ 2; 4 ] in
  let cells =
    List.concat_map
      (fun domains ->
        List.map (fun clients -> run_cell ~domains ~clients) client_axis)
      domain_axis
  in
  (* Shed probe and mid-load shutdown, on a sharded server with a tiny
     admission bound. *)
  let sock = fresh_sock () in
  if Sys.file_exists sock then Sys.remove sock;
  let address = Server.Address.Unix_path sock in
  let pid =
    spawn_server
      [
        "--listen"; "unix:" ^ sock;
        "--concurrency"; "2";
        "--domains"; "2";
        "--max-pending"; string_of_int max_pending;
        "--drain-grace"; "2";
      ]
  in
  let probe = connect address in
  let accepted = ref 0 and shed = ref 0 and retry_hint = ref 0 in
  for i = 0 to (2 * max_pending) + 2 do
    match
      Server.Client.submit probe
        (spec ~profile:"struct" ~mode:Engine.Job.Standard (100 + i))
    with
    | Ok _ -> incr accepted
    | Error (Server.Client.Refused e)
      when e.Engine.Protocol.code = Engine.Protocol.Overloaded ->
      incr shed;
      (match e.Engine.Protocol.retry_after_ms with
      | Some ms -> retry_hint := ms
      | None -> ())
    | Error f -> fail "probe: %s" (Server.Client.failure_message f)
  done;
  Printf.printf "  shed probe: %d accepted, %d overloaded (retry hint %d ms)\n%!"
    !accepted !shed !retry_hint;
  (match Server.Client.shutdown probe with
  | Ok () -> ()
  | Error f -> fail "shutdown: %s" (Server.Client.failure_message f));
  Server.Client.close probe;
  let clean_shutdown = reap pid in
  if Sys.file_exists sock then Sys.remove sock;
  Printf.printf "  graceful shutdown under load: %b\n%!" clean_shutdown;
  let num v = Obs.Json.Num v in
  let doc =
    Obs.Json.Obj
      [
        ("git", Obs.Json.Str (git_revision ()));
        ( "domains",
          num (float_of_int (List.fold_left max 1 domain_axis)) );
        ("cores", num (float_of_int (Domain.recommended_domain_count ())));
        ("scale", num !scale);
        ("grid", Obs.Json.Arr cells);
        ("bitwise_identical", Obs.Json.Bool !bitwise);
        ( "shed_probe",
          Obs.Json.Obj
            [
              ("max_pending", num (float_of_int max_pending));
              ("accepted", num (float_of_int !accepted));
              ("overloaded", num (float_of_int !shed));
              ("retry_after_ms", num (float_of_int !retry_hint));
            ] );
        ("clean_shutdown", Obs.Json.Bool clean_shutdown);
      ]
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_serve.json";
  if !shed = 0 || not clean_shutdown || not !bitwise then begin
    Printf.eprintf
      "serve bench: %d shed, clean shutdown %b, bitwise %b — not healthy\n"
      !shed clean_shutdown !bitwise;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Mega scaling suite (production-scale circuits) → BENCH_mega.json    *)

(* Peak resident set (VmHWM) in MB.  The high-water mark is process
   global and monotone, so the suite runs circuits smallest-first and
   each row's snapshot bounds everything up to and including it. *)
let peak_rss_mb () =
  try
    let ic = open_in "/proc/self/status" in
    let rec scan () =
      match input_line ic with
      | line when String.length line > 6 && String.sub line 0 6 = "VmHWM:" ->
        close_in ic;
        Scanf.sscanf
          (String.sub line 6 (String.length line - 6))
          " %d kB"
          (fun kb -> float_of_int kb /. 1024.)
      | _ -> scan ()
      | exception End_of_file ->
        close_in ic;
        Float.nan
    in
    scan ()
  with _ -> Float.nan

(* Explicit density grids per profile: [Density_map.auto_bins] clamps at
   128 bins per axis, which is too coarse past a few hundred thousand
   cells, so the scaling suite pins the grid and records it per row. *)
let mega_grid cells =
  if cells >= 750_000 then (384, 384)
  else if cells >= 400_000 then (256, 256)
  else if cells >= 200_000 then (192, 192)
  else (128, 128)

type mega_row = {
  mg_profile : string;
  mg_cells : int;
  mg_nets : int;
  mg_flow : string;  (* "flat" | "multilevel" *)
  mg_grid : int * int;
  mg_levels : int;  (* coarsening levels; 0 for the flat flow *)
  mg_iterations : int;
  mg_ms_per_iter : float;
  mg_total_ms : float;
  mg_hpwl : float;  (* nan for flat probes (not run to convergence) *)
  mg_peak_rss_mb : float;
}

let write_mega_json path rows =
  let num v =
    if Float.is_nan v then Obs.Json.Null else Obs.Json.Num v
  in
  let row r =
    let nx, ny = r.mg_grid in
    Obs.Json.Obj
      [
        ("profile", Obs.Json.Str r.mg_profile);
        ("cells", Obs.Json.Num (float_of_int r.mg_cells));
        ("nets", Obs.Json.Num (float_of_int r.mg_nets));
        ("flow", Obs.Json.Str r.mg_flow);
        ( "grid",
          Obs.Json.Arr
            [ Obs.Json.Num (float_of_int nx); Obs.Json.Num (float_of_int ny) ]
        );
        ("levels", Obs.Json.Num (float_of_int r.mg_levels));
        ("iterations", Obs.Json.Num (float_of_int r.mg_iterations));
        ("ms_per_iter", num r.mg_ms_per_iter);
        ("total_ms", num r.mg_total_ms);
        ("hpwl", num r.mg_hpwl);
        ("peak_rss_mb", num r.mg_peak_rss_mb);
      ]
  in
  let doc =
    Obs.Json.Obj
      [
        ("git", Obs.Json.Str (git_revision ()));
        ("domains", Obs.Json.Num (float_of_int (Numeric.Parallel.num_domains ())));
        ("scale", Obs.Json.Num !scale);
        ("seed", Obs.Json.Num (float_of_int !seed));
        ( "note",
          Obs.Json.Str
            "flat rows time a fixed number of transformations from the \
             initial state (per-iteration cost probe); multilevel rows run \
             the V-cycle to completion" );
        ("rows", Obs.Json.Arr (List.map row rows));
      ]
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* The scaling suite behind the multilevel V-cycle: for each mega
   profile, probe the flat flow's per-iteration cost (a handful of
   transformations — full flat convergence at 10⁶ cells is the problem
   the V-cycle exists to avoid) and run the multilevel flow end to end,
   recording ms/iteration, final wire length and peak RSS.

   Not part of the default everything-run: generating and placing the
   million-cell circuit takes minutes, so CI and humans opt in with
   [--mega] (optionally with [--scale] to shrink for smoke tests). *)
let mega_bench () =
  print_endline "";
  Printf.printf "Mega scaling suite (scale %g, %d domain(s))\n" !scale
    (Numeric.Parallel.num_domains ());
  Printf.printf "%-9s | %9s | %-10s | %7s | %6s | %10s | %9s | %8s\n"
    "profile" "cells" "flow" "grid" "iters" "ms/iter" "hpwl" "rss MB";
  let rows = ref [] in
  let emit r =
    let nx, _ = r.mg_grid in
    Printf.printf "%-9s | %9d | %-10s | %4dx%-3d | %6d | %10.1f | %9.3g | %8.0f\n%!"
      r.mg_profile r.mg_cells r.mg_flow nx nx r.mg_iterations r.mg_ms_per_iter
      r.mg_hpwl r.mg_peak_rss_mb;
    rows := r :: !rows
  in
  List.iter
    (fun (prof : Circuitgen.Profiles.t) ->
      let name = prof.Circuitgen.Profiles.profile_name in
      let params = Circuitgen.Profiles.params ~scale:!scale prof ~seed:!seed in
      let circuit, pads = Circuitgen.Gen.generate params in
      let p0 = Circuitgen.Gen.initial_placement circuit pads in
      let cells = Netlist.Circuit.num_cells circuit in
      let nets = Netlist.Circuit.num_nets circuit in
      let grid = mega_grid cells in
      let config =
        { Kraftwerk.Config.standard with Kraftwerk.Config.grid = Some grid }
      in
      Printf.eprintf "[mega] %s: %d cells, %d nets\n%!" name cells nets;
      (* Flat flow: per-iteration cost over a few transformations. *)
      let flat_iters = if cells > 300_000 then 2 else 3 in
      let state = Kraftwerk.Placer.init config circuit (Netlist.Placement.copy p0) in
      let (), flat_ms =
        time (fun () ->
            for _ = 1 to flat_iters do
              ignore (Kraftwerk.Placer.transform state)
            done)
      in
      let flat_ms = flat_ms *. 1000. in
      emit
        {
          mg_profile = name;
          mg_cells = cells;
          mg_nets = nets;
          mg_flow = "flat";
          mg_grid = grid;
          mg_levels = 0;
          mg_iterations = flat_iters;
          mg_ms_per_iter = flat_ms /. float_of_int flat_iters;
          mg_total_ms = flat_ms;
          mg_hpwl = Float.nan;
          mg_peak_rss_mb = peak_rss_mb ();
        };
      (* Multilevel flow: the full V-cycle, counting steps across all
         levels (per-level placer counters reset at each descent). *)
      let run =
        Kraftwerk.Cluster.start config circuit ~fixed_positions:pads
          (Netlist.Placement.copy p0)
      in
      let steps = ref 0 in
      let (), ml_ms =
        time (fun () ->
            let continue = ref (not (Kraftwerk.Cluster.finished run)) in
            while !continue do
              continue := Kraftwerk.Cluster.step run;
              incr steps
            done)
      in
      let ml_ms = ml_ms *. 1000. in
      let placement = Kraftwerk.Cluster.finish run in
      Netlist.Placement.clamp_to_region circuit placement;
      emit
        {
          mg_profile = name;
          mg_cells = cells;
          mg_nets = nets;
          mg_flow = "multilevel";
          mg_grid = grid;
          mg_levels = Kraftwerk.Cluster.total_levels run;
          mg_iterations = !steps;
          mg_ms_per_iter =
            (if !steps > 0 then ml_ms /. float_of_int !steps else Float.nan);
          mg_total_ms = ml_ms;
          mg_hpwl = Metrics.Wirelength.hpwl circuit placement;
          mg_peak_rss_mb = peak_rss_mb ();
        })
    Circuitgen.Profiles.mega;
  write_mega_json "BENCH_mega.json" (List.rev !rows);
  (* The suite is only healthy when every profile completed its V-cycle. *)
  let ml_rows =
    List.filter (fun r -> r.mg_flow = "multilevel") !rows
  in
  if
    List.length ml_rows <> List.length Circuitgen.Profiles.mega
    || List.exists (fun r -> r.mg_iterations = 0 || Float.is_nan r.mg_hpwl) ml_rows
  then begin
    Printf.eprintf "mega bench: missing or empty multilevel rows\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)

let usage () =
  print_endline
    "usage: main.exe [--table 1|2|3|4] [--experiment \
     fast-mode|tradeoff|eco|floorplan|congestion|heat|linearization|final-placer|multilevel] \
     [--micro] [--place] [--engine] [--serve] [--mega] [--scale S] \
     [--seed N] [--domains D]";
  exit 1

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let tables = ref [] and experiments = ref [] in
  let want_micro = ref false and want_place = ref false in
  let want_engine = ref false and want_serve = ref false in
  let want_mega = ref false in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
      scale := float_of_string v;
      parse rest
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "--domains" :: v :: rest ->
      (* Applies to every suite: the pool is process-global and each
         emitted JSON records the resulting num_domains. *)
      Numeric.Parallel.set_num_domains (int_of_string v);
      parse rest
    | "--table" :: v :: rest ->
      tables := int_of_string v :: !tables;
      parse rest
    | "--experiment" :: v :: rest ->
      experiments := v :: !experiments;
      parse rest
    | "--micro" :: rest ->
      want_micro := true;
      parse rest
    | "--place" :: rest ->
      want_place := true;
      parse rest
    | "--engine" :: rest ->
      want_engine := true;
      parse rest
    | "--serve" :: rest ->
      want_serve := true;
      parse rest
    | "--mega" :: rest ->
      want_mega := true;
      parse rest
    | _ -> usage ()
  in
  parse args;
  let run_experiment = function
    | "fast-mode" -> fast_mode ()
    | "tradeoff" -> tradeoff ()
    | "eco" -> eco ()
    | "floorplan" -> floorplan ()
    | "congestion" -> congestion ()
    | "heat" -> heat ()
    | "linearization" -> linearization ()
    | "final-placer" -> final_placer ()
    | "multilevel" -> multilevel ()
    | "net-model" -> net_model ()
    | other ->
      Printf.eprintf "unknown experiment: %s\n" other;
      exit 1
  in
  let run_table = function
    | 1 -> table1 ()
    | 2 -> table2 ()
    | 3 -> table3 ()
    | 4 -> table4 ()
    | other ->
      Printf.eprintf "unknown table: %d\n" other;
      exit 1
  in
  if
    !tables = [] && !experiments = [] && not !want_micro && not !want_place
    && not !want_engine && not !want_serve && not !want_mega
  then begin
    (* Default: everything. *)
    Printf.printf "Kraftwerk reproduction — full experiment run (scale %.2f)\n" !scale;
    List.iter run_table [ 1; 2; 3; 4 ];
    List.iter run_experiment
      [ "fast-mode"; "tradeoff"; "eco"; "floorplan"; "congestion"; "heat";
        "linearization"; "final-placer"; "multilevel"; "net-model" ];
    place_bench ();
    engine_bench ();
    serve_bench ();
    micro ()
  end
  else begin
    List.iter run_table (List.rev !tables);
    List.iter run_experiment (List.rev !experiments);
    if !want_place then place_bench ();
    if !want_engine then engine_bench ();
    if !want_serve then serve_bench ();
    if !want_mega then mega_bench ();
    if !want_micro then micro ()
  end
